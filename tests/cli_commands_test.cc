#include "tools/cli_commands.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/binary_format.h"
#include "graph/binary_io.h"
#include "spider/spider_store_io.h"
#include "spider/spider_store_mmap.h"

namespace spidermine::cli {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class CliTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) std::filesystem::remove(path);
  }

  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

TEST_F(CliTest, GenWritesGraphAndReportsSize) {
  const std::string path = Track(TempPath("cli_gen_test.smg"));
  std::ostringstream out;
  Status status = CmdGen({"--model=er", "--vertices=200", "--avg-degree=2.5",
                          "--labels=10", "--seed=7", "--out=" + path},
                         out);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_NE(out.str().find("|V|=200"), std::string::npos);

  Result<LabeledGraph> loaded = LoadGraphAuto(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 200);
}

TEST_F(CliTest, GenWithInjectionMentionsPlantedPattern) {
  const std::string path = Track(TempPath("cli_gen_inject.lg"));
  std::ostringstream out;
  Status status =
      CmdGen({"--model=er", "--vertices=150", "--labels=12",
              "--inject-vertices=10", "--inject-count=2", "--out=" + path},
             out);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.str().find("injected pattern: |V|=10"), std::string::npos);
}

TEST_F(CliTest, GenRequiresOut) {
  std::ostringstream out;
  Status status = CmdGen({"--model=er"}, out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliTest, GenRejectsUnknownModel) {
  std::ostringstream out;
  Status status =
      CmdGen({"--model=hypercube", "--out=" + TempPath("x.lg")}, out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("hypercube"), std::string::npos);
}

TEST_F(CliTest, StatsPrintsSummary) {
  const std::string path = Track(TempPath("cli_stats.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=100", "--labels=5",
                      "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdStats({path}, out);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.str().find("vertices: 100"), std::string::npos);
  EXPECT_NE(out.str().find("degree min/avg/max"), std::string::npos);
}

TEST_F(CliTest, StatsFailsOnMissingFile) {
  std::ostringstream out;
  EXPECT_FALSE(CmdStats({TempPath("does_not_exist.smg")}, out).ok());
}

TEST_F(CliTest, MineFindsPlantedPattern) {
  const std::string path = Track(TempPath("cli_mine.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=200", "--avg-degree=1.5",
                      "--labels=15", "--seed=5", "--inject-vertices=12",
                      "--inject-count=3", "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdMine({path, "--support=3", "--k=5", "--dmax=4",
                           "--vmin=12", "--seed=2", "--stats"},
                          out);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.str().find("top "), std::string::npos);
  EXPECT_NE(out.str().find("|V|=12"), std::string::npos);
  EXPECT_NE(out.str().find("stage I:"), std::string::npos);
  EXPECT_NE(out.str().find("spiders"), std::string::npos);
}

TEST_F(CliTest, MineSavesPatternFiles) {
  const std::string graph_path = Track(TempPath("cli_mine_out.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=120", "--avg-degree=1.5",
                      "--labels=10", "--inject-vertices=8",
                      "--inject-count=3", "--out=" + graph_path},
                     gen_out)
                  .ok());
  const std::string prefix = TempPath("cli_mine_patterns");
  std::ostringstream out;
  Status status = CmdMine({graph_path, "--support=3", "--k=2", "--dmax=4",
                           "--vmin=8", "--out=" + prefix},
                          out);
  ASSERT_TRUE(status.ok()) << status;
  // At least the rank-1 pattern file must exist and load back.
  const std::string first = prefix + ".1.smp";
  Track(first);
  Track(prefix + ".2.smp");
  ASSERT_TRUE(std::filesystem::exists(first));
  Result<Pattern> loaded = LoadPatternBinary(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_GT(loaded->NumVertices(), 0);
}

TEST_F(CliTest, MineVariantsAndMaximalFlags) {
  const std::string path = Track(TempPath("cli_mine2.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=150", "--avg-degree=1.5",
                      "--labels=10", "--inject-vertices=8",
                      "--inject-count=3", "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdMine(
      {path, "--support=3", "--k=5", "--dmax=4", "--vmin=8", "--maximal",
       "--variants"},
      out);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.str().find("variant groups:"), std::string::npos);
}

TEST_F(CliTest, MineRejectsNegativeThreadsWithClearError) {
  const std::string path = Track(TempPath("cli_mine_threads.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=50", "--labels=5",
                      "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdMine({path, "--threads=-1"}, out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--threads"), std::string::npos);
  EXPECT_NE(status.message().find("-1"), std::string::npos);
}

TEST_F(CliTest, MineRejectsNegativeShardGrainWithClearError) {
  const std::string path = Track(TempPath("cli_mine_grain.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=50", "--labels=5",
                      "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdMine({path, "--shard-grain=-5"}, out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--shard-grain"), std::string::npos);
}

TEST_F(CliTest, MineClampsAbsurdThreadAndGrainValues) {
  // Absurd-but-positive values are clamped, not rejected: the run must
  // succeed (and results are identical at any accepted value anyway).
  const std::string path = Track(TempPath("cli_mine_clamp.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=60", "--avg-degree=1.5",
                      "--labels=6", "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdMine({path, "--support=3", "--k=2",
                           "--threads=999999999", "--shard-grain=4"},
                          out);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.str().find("top "), std::string::npos);
}

TEST_F(CliTest, MineRejectsBadMeasure) {
  const std::string path = Track(TempPath("cli_mine3.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=50", "--labels=5",
                      "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdMine({path, "--measure=bogus"}, out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliTest, Stage1WritesArtifactAndReportsSpiders) {
  const std::string graph_path = Track(TempPath("cli_stage1.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=150", "--avg-degree=1.5",
                      "--labels=12", "--seed=5", "--inject-vertices=10",
                      "--inject-count=3", "--out=" + graph_path},
                     gen_out)
                  .ok());
  const std::string artifact = Track(TempPath("cli_stage1.sm2"));
  std::ostringstream out;
  Status status =
      CmdStage1({graph_path, "--support=3", "--out=" + artifact}, out);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_TRUE(std::filesystem::exists(artifact));
  EXPECT_NE(out.str().find("stage1: mined "), std::string::npos);

  // stage1 writes the zero-copy format; the artifact opens mmap'd.
  EXPECT_EQ(binary_format::PeekMagic(artifact),
            std::string(kSm2Magic, 4));
  Result<std::unique_ptr<MappedStage1>> loaded = MappedStage1::Open(artifact);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_GT((*loaded)->store().size(), 0);
  EXPECT_EQ((*loaded)->meta().min_support, 3);
  EXPECT_TRUE((*loaded)->EnsureValidated().ok());
}

TEST_F(CliTest, Stage1RequiresOut) {
  const std::string graph_path = Track(TempPath("cli_stage1_noout.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=50", "--labels=5",
                      "--out=" + graph_path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdStage1({graph_path}, out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliTest, QueryAnswersTwiceByteIdenticallyAndMatchesMine) {
  const std::string graph_path = Track(TempPath("cli_query.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=180", "--avg-degree=1.5",
                      "--labels=12", "--seed=5", "--inject-vertices=10",
                      "--inject-count=3", "--out=" + graph_path},
                     gen_out)
                  .ok());
  const std::string artifact = Track(TempPath("cli_query.sm1"));
  std::ostringstream stage1_out;
  ASSERT_TRUE(
      CmdStage1({graph_path, "--support=3", "--out=" + artifact}, stage1_out)
          .ok());

  const std::vector<std::string> query_args = {
      graph_path, artifact, "--k=5", "--dmax=4", "--vmin=10", "--seed=2"};
  std::ostringstream first, second;
  ASSERT_TRUE(CmdQuery(query_args, first).ok());
  ASSERT_TRUE(CmdQuery(query_args, second).ok());
  EXPECT_EQ(first.str(), second.str())
      << "identical queries must print byte-identical output";
  EXPECT_NE(first.str().find("cached spiders"), std::string::npos);

  // The query's pattern rows match a one-shot `mine` with the same
  // parameters (headers differ; rows are the contract).
  std::ostringstream mine_out;
  ASSERT_TRUE(CmdMine({graph_path, "--support=3", "--k=5", "--dmax=4",
                       "--vmin=10", "--seed=2"},
                      mine_out)
                  .ok());
  auto rows = [](const std::string& text) {
    return text.substr(text.find('\n') + 1);
  };
  EXPECT_EQ(rows(first.str()), rows(mine_out.str()));
}

TEST_F(CliTest, QueryRejectsSupportBelowArtifactFloor) {
  const std::string graph_path = Track(TempPath("cli_query_floor.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=80", "--labels=6",
                      "--out=" + graph_path},
                     gen_out)
                  .ok());
  const std::string artifact = Track(TempPath("cli_query_floor.sm1"));
  std::ostringstream stage1_out;
  ASSERT_TRUE(
      CmdStage1({graph_path, "--support=3", "--out=" + artifact}, stage1_out)
          .ok());
  std::ostringstream out;
  Status status = CmdQuery({graph_path, artifact, "--support=2"}, out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("floor"), std::string::npos);
}

TEST_F(CliTest, QueryRejectsCorruptArtifact) {
  const std::string graph_path = Track(TempPath("cli_query_corrupt.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=80", "--labels=6",
                      "--out=" + graph_path},
                     gen_out)
                  .ok());
  const std::string artifact = Track(TempPath("cli_query_corrupt.sm1"));
  std::ostringstream stage1_out;
  ASSERT_TRUE(
      CmdStage1({graph_path, "--support=2", "--out=" + artifact}, stage1_out)
          .ok());
  // Flip one payload byte: the checksum must reject the artifact.
  std::ifstream in(artifact, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x40);
  std::ofstream rewrite(artifact, std::ios::binary | std::ios::trunc);
  rewrite.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  rewrite.close();
  std::ostringstream out;
  Status status = CmdQuery({graph_path, artifact}, out);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(CliTest, BaselineSubdueRuns) {
  const std::string path = Track(TempPath("cli_baseline.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=120", "--labels=8",
                      "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  Status status = CmdBaseline({path, "--algo=subdue", "--k=3"}, out);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(out.str().find("subdue:"), std::string::npos);
}

TEST_F(CliTest, BaselineRejectsUnknownAlgo) {
  const std::string path = Track(TempPath("cli_baseline2.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=50", "--labels=5",
                      "--out=" + path},
                     gen_out)
                  .ok());
  std::ostringstream out;
  EXPECT_FALSE(CmdBaseline({path, "--algo=magic"}, out).ok());
}

TEST_F(CliTest, ConvertRoundTripsBetweenFormats) {
  const std::string binary = Track(TempPath("cli_conv.smg"));
  const std::string text = Track(TempPath("cli_conv.lg"));
  const std::string binary2 = Track(TempPath("cli_conv2.smg"));
  std::ostringstream gen_out;
  ASSERT_TRUE(CmdGen({"--model=er", "--vertices=80", "--labels=6",
                      "--out=" + binary},
                     gen_out)
                  .ok());
  std::ostringstream out;
  ASSERT_TRUE(CmdConvert({binary, text}, out).ok());
  ASSERT_TRUE(CmdConvert({text, binary2}, out).ok());
  Result<LabeledGraph> a = LoadGraphAuto(binary);
  Result<LabeledGraph> b = LoadGraphAuto(binary2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->NumVertices(), b->NumVertices());
  EXPECT_EQ(a->NumEdges(), b->NumEdges());
}

TEST_F(CliTest, RunCliDispatchesAndReportsErrors) {
  std::ostringstream out, err;
  EXPECT_EQ(RunCli({}, out, err), 2);
  EXPECT_NE(err.str().find("usage"), std::string::npos);

  std::ostringstream out2, err2;
  EXPECT_EQ(RunCli({"frobnicate"}, out2, err2), 2);
  EXPECT_NE(err2.str().find("unknown subcommand"), std::string::npos);

  std::ostringstream out3, err3;
  EXPECT_EQ(RunCli({"stats", TempPath("missing.smg")}, out3, err3), 1);
  EXPECT_FALSE(err3.str().empty());
}

TEST_F(CliTest, RunCliHappyPath) {
  const std::string path = Track(TempPath("cli_run.smg"));
  std::ostringstream out, err;
  int code = RunCli({"gen", "--model=er", "--vertices=60", "--labels=5",
                     "--out=" + path},
                    out, err);
  EXPECT_EQ(code, 0);
  EXPECT_TRUE(err.str().empty());
}

}  // namespace
}  // namespace spidermine::cli
