#include "support/support_measure.h"

#include <gtest/gtest.h>

namespace spidermine {
namespace {

Pattern EdgePattern() {
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddEdge(0, 1);
  return p;
}

TEST(SupportTest, EmbeddingCountIsSize) {
  Pattern p = EdgePattern();
  std::vector<Embedding> embeddings{{0, 1}, {1, 2}, {2, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kEmbeddingCount, p, embeddings),
            3);
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kEmbeddingCount, p, {}), 0);
}

TEST(SupportTest, MinImageTakesMinimumOverVertices) {
  Pattern p = EdgePattern();
  // Vertex 0 images: {0, 0, 0} -> 1 distinct; vertex 1 images: {1, 2, 3}.
  std::vector<Embedding> embeddings{{0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kMinImage, p, embeddings), 1);
  // Balanced images.
  std::vector<Embedding> balanced{{0, 1}, {2, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kMinImage, p, balanced), 2);
}

TEST(SupportTest, GreedyMisVertexCountsDisjointEmbeddings) {
  Pattern p = EdgePattern();
  // {0,1} and {1,2} overlap; {3,4} disjoint.
  std::vector<Embedding> embeddings{{0, 1}, {1, 2}, {3, 4}};
  EXPECT_EQ(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings), 2);
}

TEST(SupportTest, GreedyMisVertexChainOverlap) {
  Pattern p = EdgePattern();
  // A path of overlapping edges: greedy picks 0-1, skips 1-2, picks 2-3...
  std::vector<Embedding> embeddings{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  EXPECT_EQ(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings), 3);
}

TEST(SupportTest, GreedyMisEdgeAllowsVertexSharing) {
  Pattern p = EdgePattern();
  // Star at 0: edges 0-1, 0-2, 0-3 share vertex 0 but no edge.
  std::vector<Embedding> embeddings{{0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings),
            3);
  EXPECT_EQ(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings), 1);
}

TEST(SupportTest, GreedyMisEdgeDetectsSharedEdges) {
  // Two-edge path pattern: embeddings share the middle edge.
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  std::vector<Embedding> embeddings{{0, 1, 2}, {2, 1, 0}, {3, 4, 5}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings),
            2);
}

TEST(SupportTest, GreedyMisEdgeOnEdgelessPatternFallsBack) {
  Pattern p(0);
  std::vector<Embedding> embeddings{{0}, {1}, {1}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings),
            2);
}

TEST(SupportTest, TransactionSupportCountsDistinctTransactions) {
  Pattern p = EdgePattern();
  std::vector<int32_t> txn{0, 0, 1, 1, 2, 2};
  SupportContext ctx;
  ctx.txn_of_vertex = &txn;
  std::vector<Embedding> embeddings{{0, 1}, {2, 3}, {2, 3}, {4, 5}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kTransaction, p, embeddings,
                           ctx),
            3);
}

TEST(SupportTest, TransactionSupportWithoutContextIsZero) {
  Pattern p = EdgePattern();
  std::vector<Embedding> embeddings{{0, 1}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kTransaction, p, embeddings),
            0);
}

TEST(SupportTest, MeasureNamesAreStable) {
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kEmbeddingCount),
            "embedding-count");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kMinImage), "min-image");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kGreedyMisVertex),
            "greedy-mis-vertex");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kGreedyMisEdge),
            "greedy-mis-edge");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kTransaction),
            "transaction");
}

TEST(DedupEmbeddingsTest, RemovesSameImageDifferentOrder) {
  std::vector<Embedding> embeddings{{0, 1}, {1, 0}, {2, 3}};
  DedupEmbeddingsByImage(&embeddings);
  EXPECT_EQ(embeddings.size(), 2u);
  EXPECT_EQ(embeddings[0], (Embedding{0, 1}));
  EXPECT_EQ(embeddings[1], (Embedding{2, 3}));
}

TEST(DedupEmbeddingsTest, KeepsDistinctImages) {
  std::vector<Embedding> embeddings{{0, 1}, {0, 2}, {1, 2}};
  DedupEmbeddingsByImage(&embeddings);
  EXPECT_EQ(embeddings.size(), 3u);
}

TEST(DedupEmbeddingsTest, EmptyListNoop) {
  std::vector<Embedding> embeddings;
  DedupEmbeddingsByImage(&embeddings);
  EXPECT_TRUE(embeddings.empty());
}

TEST(SupportTest, MisMeasuresAreUpperBoundedByEmbeddingCount) {
  Pattern p = EdgePattern();
  std::vector<Embedding> embeddings{{0, 1}, {2, 3}, {4, 5}, {0, 5}};
  int64_t count =
      ComputeSupport(SupportMeasureKind::kEmbeddingCount, p, embeddings);
  EXPECT_LE(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings),
      count);
  EXPECT_LE(ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings),
            count);
  // Vertex conflicts are a superset of edge conflicts.
  EXPECT_LE(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings),
      ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings));
}

}  // namespace
}  // namespace spidermine
