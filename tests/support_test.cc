#include "support/support_measure.h"

#include <gtest/gtest.h>

#include <fstream>

#include "graph/graph_builder.h"
#include "spidermine/txn_adapter.h"

namespace spidermine {
namespace {

Pattern EdgePattern() {
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddEdge(0, 1);
  return p;
}

TEST(SupportTest, EmbeddingCountIsSize) {
  Pattern p = EdgePattern();
  std::vector<Embedding> embeddings{{0, 1}, {1, 2}, {2, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kEmbeddingCount, p, embeddings),
            3);
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kEmbeddingCount, p, {}), 0);
}

TEST(SupportTest, MinImageTakesMinimumOverVertices) {
  Pattern p = EdgePattern();
  // Vertex 0 images: {0, 0, 0} -> 1 distinct; vertex 1 images: {1, 2, 3}.
  std::vector<Embedding> embeddings{{0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kMinImage, p, embeddings), 1);
  // Balanced images.
  std::vector<Embedding> balanced{{0, 1}, {2, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kMinImage, p, balanced), 2);
}

TEST(SupportTest, GreedyMisVertexCountsDisjointEmbeddings) {
  Pattern p = EdgePattern();
  // {0,1} and {1,2} overlap; {3,4} disjoint.
  std::vector<Embedding> embeddings{{0, 1}, {1, 2}, {3, 4}};
  EXPECT_EQ(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings), 2);
}

TEST(SupportTest, GreedyMisVertexChainOverlap) {
  Pattern p = EdgePattern();
  // A path of overlapping edges: greedy picks 0-1, skips 1-2, picks 2-3...
  std::vector<Embedding> embeddings{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  EXPECT_EQ(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings), 3);
}

TEST(SupportTest, GreedyMisEdgeAllowsVertexSharing) {
  Pattern p = EdgePattern();
  // Star at 0: edges 0-1, 0-2, 0-3 share vertex 0 but no edge.
  std::vector<Embedding> embeddings{{0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings),
            3);
  EXPECT_EQ(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings), 1);
}

TEST(SupportTest, GreedyMisEdgeDetectsSharedEdges) {
  // Two-edge path pattern: embeddings share the middle edge.
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  std::vector<Embedding> embeddings{{0, 1, 2}, {2, 1, 0}, {3, 4, 5}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings),
            2);
}

TEST(SupportTest, GreedyMisEdgeOnEdgelessPatternFallsBack) {
  Pattern p(0);
  std::vector<Embedding> embeddings{{0}, {1}, {1}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings),
            2);
}

TEST(SupportTest, TransactionSupportCountsDistinctTransactions) {
  Pattern p = EdgePattern();
  std::vector<int32_t> txn{0, 0, 1, 1, 2, 2};
  SupportContext ctx;
  ctx.txn_of_vertex = &txn;
  std::vector<Embedding> embeddings{{0, 1}, {2, 3}, {2, 3}, {4, 5}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kTransaction, p, embeddings,
                           ctx),
            3);
}

TEST(SupportTest, TransactionSupportWithoutContextIsZero) {
  Pattern p = EdgePattern();
  std::vector<Embedding> embeddings{{0, 1}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kTransaction, p, embeddings),
            0);
}

TEST(SupportTest, MeasureNamesAreStable) {
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kEmbeddingCount),
            "embedding-count");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kMinImage), "min-image");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kGreedyMisVertex),
            "greedy-mis-vertex");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kGreedyMisEdge),
            "greedy-mis-edge");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kTransaction),
            "transaction");
  EXPECT_EQ(SupportMeasureName(SupportMeasureKind::kHomomorphism),
            "homomorphism");
}

TEST(SupportTest, HomomorphismIsMinImageOverTheGivenList) {
  Pattern p = EdgePattern();
  // On whatever list it is handed, the measure is the minimum-image count;
  // the homomorphism semantics come from the list being homomorphic E[P].
  std::vector<Embedding> embeddings{{0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kHomomorphism, p, embeddings),
            ComputeSupport(SupportMeasureKind::kMinImage, p, embeddings));
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kHomomorphism, p, {}), 0);
}

/// CSR map for 4 vertices: v0 -> {0, 1}, v1 -> {0}, v2 -> {1}, v3 -> {}.
VertexTxnMap SmallTxnMap() {
  VertexTxnMap map;
  map.offsets = {0, 2, 3, 4, 4};
  map.txn_ids = {0, 1, 0, 1};
  map.num_transactions = 2;
  return map;
}

TEST(SupportTest, VertexTxnMapSpansAreSortedPerVertex) {
  VertexTxnMap map = SmallTxnMap();
  EXPECT_EQ(map.NumVertices(), 4);
  ASSERT_EQ(map.TxnsOf(0).size(), 2u);
  EXPECT_EQ(map.TxnsOf(0)[0], 0);
  EXPECT_EQ(map.TxnsOf(0)[1], 1);
  EXPECT_TRUE(map.TxnsOf(3).empty());
}

TEST(SupportTest, TransactionSupportWithMapIntersectsImageVertices) {
  Pattern p = EdgePattern();
  VertexTxnMap map = SmallTxnMap();
  SupportContext ctx;
  ctx.txn_map = &map;
  // {0,1}: txns(0) = {0,1}, txns(1) = {0} -> covers {0}.
  // {0,2}: {0,1} & {1} -> covers {1}. Together: 2 transactions.
  std::vector<Embedding> both{{0, 1}, {0, 2}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kTransaction, p, both, ctx), 2);
  // {1,2}: {0} & {1} -> empty; a vertex with no payload covers nothing.
  std::vector<Embedding> none{{1, 2}, {0, 3}};
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kTransaction, p, none, ctx), 0);
}

TEST(SupportTest, TransactionMapTakesPrecedenceOverTxnOfVertex) {
  Pattern p = EdgePattern();
  VertexTxnMap map = SmallTxnMap();
  std::vector<int32_t> txn{5, 5, 5, 5};
  SupportContext ctx;
  ctx.txn_of_vertex = &txn;
  ctx.txn_map = &map;
  std::vector<Embedding> embeddings{{0, 1}};
  // The map says {0}; the legacy vector would say {5}.
  EXPECT_EQ(
      ComputeSupport(SupportMeasureKind::kTransaction, p, embeddings, ctx), 1);
}

TEST(SupportTest, TransactionSampleFiltersBothSources) {
  Pattern p = EdgePattern();
  std::vector<int32_t> sample{1};  // sorted whitelist: only transaction 1
  // Legacy disjoint-union source.
  std::vector<int32_t> txn{0, 0, 1, 1, 2, 2};
  SupportContext legacy;
  legacy.txn_of_vertex = &txn;
  legacy.txn_sample = &sample;
  std::vector<Embedding> embeddings{{0, 1}, {2, 3}, {4, 5}};
  EXPECT_EQ(
      ComputeSupport(SupportMeasureKind::kTransaction, p, embeddings, legacy),
      1);
  // Per-vertex payload source.
  VertexTxnMap map = SmallTxnMap();
  SupportContext payload;
  payload.txn_map = &map;
  payload.txn_sample = &sample;
  std::vector<Embedding> both{{0, 1}, {0, 2}};  // covers {0} and {1}
  EXPECT_EQ(ComputeSupport(SupportMeasureKind::kTransaction, p, both, payload),
            1);
}

/// A 4-vertex path graph with one label, split into two 2-vertex
/// transactions, as the smallest MineTransactions input.
Result<TransactionGraph> TinyTransactionGraph() {
  GraphBuilder builder;
  std::vector<LabeledGraph> database;
  for (int t = 0; t < 2; ++t) {
    GraphBuilder b;
    b.AddVertex(0);
    b.AddVertex(0);
    b.AddEdge(0, 1);
    SM_ASSIGN_OR_RETURN(LabeledGraph g, b.Build());
    database.push_back(std::move(g));
  }
  return BuildTransactionGraph(database);
}

TEST(TxnAdapterTest, MineTransactionsRejectsConflictingMeasure) {
  Result<TransactionGraph> txn = TinyTransactionGraph();
  ASSERT_TRUE(txn.ok());
  MineConfig config;
  config.min_support = 1;
  config.vmin = 1;
  config.support_measure = SupportMeasureKind::kMinImage;
  Result<MineResult> result = MineTransactions(*txn, config);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("transaction measure"),
            std::string::npos)
      << result.status().ToString();
}

TEST(TxnAdapterTest, MineTransactionsRejectsForeignTxnMap) {
  Result<TransactionGraph> txn = TinyTransactionGraph();
  ASSERT_TRUE(txn.ok());
  std::vector<int32_t> foreign(static_cast<size_t>(txn->graph.NumVertices()),
                               0);
  MineConfig config;
  config.min_support = 1;
  config.vmin = 1;
  config.txn_of_vertex = &foreign;
  Result<MineResult> result = MineTransactions(*txn, config);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("different transaction map"),
            std::string::npos)
      << result.status().ToString();
}

TEST(TxnAdapterTest, MineTransactionsAcceptsDefaultAndExplicitMeasure) {
  Result<TransactionGraph> txn = TinyTransactionGraph();
  ASSERT_TRUE(txn.ok());
  MineConfig config;
  config.min_support = 1;
  config.vmin = 1;
  ASSERT_TRUE(MineTransactions(*txn, config).ok());  // struct default
  config.support_measure = SupportMeasureKind::kTransaction;
  config.txn_of_vertex = &txn->txn_of_vertex;  // the graph's own map is fine
  ASSERT_TRUE(MineTransactions(*txn, config).ok());
}

TEST(TxnAdapterTest, LoadVertexTxnMapParsesAndValidates) {
  const std::string path = ::testing::TempDir() + "/txn_map_test.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "0 0\n"
        << "0 1\n"
        << "\n"
        << "2 1\n"
        << "0 1\n";  // duplicate collapses
  }
  Result<VertexTxnMap> map = LoadVertexTxnMap(path, 4);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->num_transactions, 2);
  ASSERT_EQ(map->NumVertices(), 4);
  EXPECT_EQ(map->TxnsOf(0).size(), 2u);
  EXPECT_EQ(map->TxnsOf(1).size(), 0u);
  EXPECT_EQ(map->TxnsOf(2).size(), 1u);
  EXPECT_EQ(map->TxnsOf(2)[0], 1);
  // Out-of-range vertex fails with the line number.
  {
    std::ofstream out(path);
    out << "9 0\n";
  }
  Result<VertexTxnMap> bad = LoadVertexTxnMap(path, 4);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
  EXPECT_FALSE(LoadVertexTxnMap("/nonexistent/txn.map", 4).ok());
}

TEST(DedupEmbeddingsTest, RemovesSameImageDifferentOrder) {
  std::vector<Embedding> embeddings{{0, 1}, {1, 0}, {2, 3}};
  DedupEmbeddingsByImage(&embeddings);
  EXPECT_EQ(embeddings.size(), 2u);
  EXPECT_EQ(embeddings[0], (Embedding{0, 1}));
  EXPECT_EQ(embeddings[1], (Embedding{2, 3}));
}

TEST(DedupEmbeddingsTest, KeepsDistinctImages) {
  std::vector<Embedding> embeddings{{0, 1}, {0, 2}, {1, 2}};
  DedupEmbeddingsByImage(&embeddings);
  EXPECT_EQ(embeddings.size(), 3u);
}

TEST(DedupEmbeddingsTest, EmptyListNoop) {
  std::vector<Embedding> embeddings;
  DedupEmbeddingsByImage(&embeddings);
  EXPECT_TRUE(embeddings.empty());
}

TEST(SupportTest, MisMeasuresAreUpperBoundedByEmbeddingCount) {
  Pattern p = EdgePattern();
  std::vector<Embedding> embeddings{{0, 1}, {2, 3}, {4, 5}, {0, 5}};
  int64_t count =
      ComputeSupport(SupportMeasureKind::kEmbeddingCount, p, embeddings);
  EXPECT_LE(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings),
      count);
  EXPECT_LE(ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings),
            count);
  // Vertex conflicts are a superset of edge conflicts.
  EXPECT_LE(
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings),
      ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings));
}

}  // namespace
}  // namespace spidermine
