#include "spidermine/growth.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "pattern/vf2.h"
#include "spider/star_miner.h"
#include "spider_test_util.h"

namespace spidermine {
namespace {

/// Two disjoint copies of the labeled path 0-1-2-3-4 (labels = positions).
LabeledGraph TwoPaths() {
  GraphBuilder b;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId base = b.AddVertex(0);
    for (LabelId l = 1; l <= 4; ++l) b.AddVertex(l);
    for (int i = 0; i < 4; ++i) b.AddEdge(base + i, base + i + 1);
  }
  return std::move(b.Build()).value();
}

struct Fixture {
  LabeledGraph graph;
  StarMineResult stars;
  SessionConfig session_config;
  QueryConfig query_config;
  MineStats stats;
  std::unique_ptr<SpiderIndex> index;
  std::unique_ptr<GrowthEngine> engine;

  explicit Fixture(LabeledGraph g) : graph(std::move(g)) {
    StarMinerConfig star_config;
    star_config.min_support = 2;
    stars = std::move(MineStarSpiders(graph, star_config)).value();
    session_config.min_support = 2;
    session_config.spider_radius = 1;
    query_config.min_support = 2;  // engines take a resolved threshold
    index = std::make_unique<SpiderIndex>(&stars.store,
                                          graph.NumVertices());
    engine = std::make_unique<GrowthEngine>(&graph, index.get(),
                                            &session_config, &query_config,
                                            &stats);
  }

  /// Store id of the star (head, leaf-label multiset), or -1 when absent.
  int32_t FindStar(LabelId head, std::vector<LabelId> leaves) const {
    return spidermine::FindStar(stars.store, head, std::move(leaves));
  }
};

TEST(GrowthTest, SeedFromSpiderBuildsAnchoredEmbeddings) {
  Fixture f(TwoPaths());
  int32_t s = f.FindStar(1, {0, 2});
  ASSERT_NE(s, -1);
  GrowthPattern seed = f.engine->SeedFromSpider(s);
  EXPECT_EQ(seed.pattern.NumVertices(), 3);
  ASSERT_EQ(seed.embeddings.size(), 2u);  // one per path copy
  EXPECT_EQ(seed.support, 2);
  // Boundary = the leaves.
  EXPECT_EQ(seed.boundary, (std::vector<VertexId>{1, 2}));
  for (const Embedding& e : seed.embeddings) {
    // Head image has label 1.
    EXPECT_EQ(f.graph.Label(e[0]), 1);
  }
}

TEST(GrowthTest, SeedFromSingleVertexSpiderHasHeadBoundary) {
  Fixture f(TwoPaths());
  int32_t s = f.FindStar(2, {});
  ASSERT_NE(s, -1);
  GrowthPattern seed = f.engine->SeedFromSpider(s);
  EXPECT_EQ(seed.pattern.NumVertices(), 1);
  EXPECT_EQ(seed.boundary, (std::vector<VertexId>{0}));
  EXPECT_EQ(seed.embeddings.size(), 2u);
}

TEST(GrowthTest, GrowRoundExtendsPatternOutward) {
  Fixture f(TwoPaths());
  int32_t s = f.FindStar(1, {0, 2});
  ASSERT_NE(s, -1);
  std::vector<GrowthPattern> working;
  working.push_back(f.engine->SeedFromSpider(s));
  MergeRegistry previous;
  GrowRoundResult round =
      f.engine->GrowRound(std::move(working), /*enable_merging=*/false,
                          &previous);
  EXPECT_TRUE(round.any_growth);
  // Some output pattern must now contain label 3 (grown through vertex 2).
  bool grew_to_3 = false;
  for (const GrowthPattern& gp : round.patterns) {
    for (VertexId v = 0; v < gp.pattern.NumVertices(); ++v) {
      if (gp.pattern.Label(v) == 3) grew_to_3 = true;
    }
    EXPECT_GE(gp.support, 2);
  }
  EXPECT_TRUE(grew_to_3);
}

TEST(GrowthTest, RepeatedRoundsReachFullPath) {
  Fixture f(TwoPaths());
  int32_t s = f.FindStar(2, {1, 3});
  ASSERT_NE(s, -1);
  std::vector<GrowthPattern> working;
  working.push_back(f.engine->SeedFromSpider(s));
  MergeRegistry previous;
  for (int round = 0; round < 3; ++round) {
    GrowRoundResult r =
        f.engine->GrowRound(std::move(working), false, &previous);
    working = std::move(r.patterns);
  }
  int32_t best_vertices = 0;
  for (const GrowthPattern& gp : working) {
    best_vertices = std::max(best_vertices, gp.pattern.NumVertices());
  }
  EXPECT_EQ(best_vertices, 5) << "growth should recover the full path";
}

TEST(GrowthTest, NonClosedSubPatternsAreDropped) {
  Fixture f(TwoPaths());
  int32_t s = f.FindStar(2, {1, 3});
  ASSERT_NE(s, -1);
  std::vector<GrowthPattern> working;
  working.push_back(f.engine->SeedFromSpider(s));
  MergeRegistry previous;
  GrowRoundResult r = f.engine->GrowRound(std::move(working), false,
                                          &previous);
  // The seed extends to label 0 and 4 keeping support 2, so the partial
  // patterns (including the seed itself) must have been dropped as
  // non-closed: every surviving pattern contains labels 0 and 4.
  EXPECT_GT(f.stats.nonclosed_dropped, 0);
  for (const GrowthPattern& gp : r.patterns) {
    std::vector<LabelId> labels = gp.pattern.SortedLabels();
    EXPECT_TRUE(std::binary_search(labels.begin(), labels.end(), 0))
        << gp.pattern.ToString();
    EXPECT_TRUE(std::binary_search(labels.begin(), labels.end(), 4))
        << gp.pattern.ToString();
  }
}

TEST(GrowthTest, MergeDetectedWhenSeedsCollide) {
  Fixture f(TwoPaths());
  // Two seeds growing toward each other along the path.
  int32_t left = f.FindStar(1, {0, 2});
  int32_t right = f.FindStar(3, {2, 4});
  ASSERT_NE(left, -1);
  ASSERT_NE(right, -1);
  std::vector<GrowthPattern> working;
  working.push_back(f.engine->SeedFromSpider(left));
  working.push_back(f.engine->SeedFromSpider(right));
  MergeRegistry previous;
  GrowRoundResult r =
      f.engine->GrowRound(std::move(working), /*enable_merging=*/true,
                          &previous);
  EXPECT_GT(f.stats.merges, 0) << "colliding growth must trigger CheckMerge";
  bool merged_full_path = false;
  for (const GrowthPattern& gp : r.patterns) {
    if (gp.merged_ever && gp.pattern.NumVertices() == 5) {
      merged_full_path = true;
      EXPECT_GE(gp.support, 2);
    }
  }
  EXPECT_TRUE(merged_full_path);
}

TEST(GrowthTest, ExhaustedFlagSetAtFixpoint) {
  Fixture f(TwoPaths());
  int32_t s = f.FindStar(2, {1, 3});
  ASSERT_NE(s, -1);
  std::vector<GrowthPattern> working;
  working.push_back(f.engine->SeedFromSpider(s));
  MergeRegistry previous;
  for (int round = 0; round < 4; ++round) {
    GrowRoundResult r =
        f.engine->GrowRound(std::move(working), false, &previous);
    working = std::move(r.patterns);
  }
  for (const GrowthPattern& gp : working) {
    if (gp.pattern.NumVertices() == 5) {
      EXPECT_TRUE(gp.exhausted) << "full path cannot grow further";
    }
  }
}

/// The engine invariant at growth level: after rounds that exercise
/// seeding, spider extension AND the merge join, every carried unsaturated
/// list is exactly the E[P] a VF2 search enumerates (same set, compared
/// canonically).
TEST(GrowthTest, CarriedListsStayExactAcrossRoundsAndMerges) {
  Fixture f(TwoPaths());
  int32_t left = f.FindStar(1, {0, 2});
  int32_t right = f.FindStar(3, {2, 4});
  ASSERT_NE(left, -1);
  ASSERT_NE(right, -1);
  std::vector<GrowthPattern> working;
  working.push_back(f.engine->SeedFromSpider(left));
  working.push_back(f.engine->SeedFromSpider(right));
  MergeRegistry previous;
  GrowRoundResult r =
      f.engine->GrowRound(std::move(working), /*enable_merging=*/true,
                          &previous);
  ASSERT_GT(f.stats.merges, 0) << "the join path must be exercised";
  int32_t checked = 0;
  for (const GrowthPattern& gp : r.patterns) {
    ASSERT_NE(gp.full_list, nullptr)
        << "engine on (default budget) must carry a list on every pattern";
    if (gp.full_list->saturated) continue;
    std::vector<Embedding> expected =
        FindEmbeddings(gp.pattern, f.graph, Vf2Options{});
    CanonicalizeEmbeddingOrder(&expected);
    std::vector<Embedding> carried = gp.full_list->embeddings;
    CanonicalizeEmbeddingOrder(&carried);
    EXPECT_EQ(carried, expected) << gp.pattern.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

/// Forcing saturation with a tiny budget never changes growth output —
/// lists are never consulted for growth decisions.
TEST(GrowthTest, TinyListBudgetDoesNotChangeGrowth) {
  Fixture engine_on(TwoPaths());
  Fixture tiny(TwoPaths());
  tiny.query_config.embedding_list_budget = 1;
  tiny.engine = std::make_unique<GrowthEngine>(
      &tiny.graph, tiny.index.get(), &tiny.session_config,
      &tiny.query_config, &tiny.stats);
  for (Fixture* f : {&engine_on, &tiny}) {
    int32_t s = f->FindStar(2, {1, 3});
    ASSERT_NE(s, -1);
    std::vector<GrowthPattern> working;
    working.push_back(f->engine->SeedFromSpider(s));
    MergeRegistry previous;
    GrowRoundResult r =
        f->engine->GrowRound(std::move(working), false, &previous);
    working = std::move(r.patterns);
  }
  EXPECT_EQ(engine_on.stats.growth_steps, tiny.stats.growth_steps);
  EXPECT_EQ(engine_on.stats.extend_calls, tiny.stats.extend_calls);
}

TEST(GrowthTest, SupportRecomputationMatchesMeasure) {
  Fixture f(TwoPaths());
  int32_t s = f.FindStar(1, {0, 2});
  ASSERT_NE(s, -1);
  GrowthPattern seed = f.engine->SeedFromSpider(s);
  EXPECT_EQ(f.engine->Support(seed), seed.support);
}

}  // namespace
}  // namespace spidermine
