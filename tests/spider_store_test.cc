#include "spider/spider_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/barabasi_albert.h"
#include "graph/graph_builder.h"
#include "spider/star_miner.h"
#include "spider_test_util.h"

namespace spidermine {
namespace {

TEST(SpiderStoreTest, EmptyStore) {
  SpiderStore store;
  EXPECT_EQ(store.size(), 0);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.TotalAnchors(), 0);
  EXPECT_TRUE(store.MaterializeAll().empty());
  // AppendPrefix of an empty store is a no-op.
  SpiderStore other;
  other.AppendPrefix(store, 10);
  EXPECT_TRUE(other.empty());
}

TEST(SpiderStoreTest, AppendAndReadBack) {
  SpiderStore store;
  std::vector<SpiderLeafKey> leaves{{0, 1}, {0, 1}, {2, 3}};
  std::vector<VertexId> anchors{4, 7, 9};
  int32_t id = store.Append(5, leaves, anchors);
  EXPECT_EQ(id, 0);
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.head_label(0), 5);
  EXPECT_EQ(store.NumVerticesOf(0), 4);
  EXPECT_EQ(store.support(0), 3);
  EXPECT_TRUE(store.closed(0));
  std::span<const SpiderLeafKey> got = store.leaves(0);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[2], (SpiderLeafKey{2, 3}));
  EXPECT_TRUE(store.IsAnchoredAt(0, 7));
  EXPECT_FALSE(store.IsAnchoredAt(0, 5));
  store.set_closed(0, false);
  EXPECT_FALSE(store.closed(0));
  EXPECT_GT(store.HeapBytes(), 0);
}

TEST(SpiderStoreTest, PatternAndMaterializeRoundTrip) {
  SpiderStore store;
  std::vector<SpiderLeafKey> leaves{{0, 2}, {1, 3}};
  std::vector<VertexId> anchors{1, 6};
  store.Append(9, leaves, anchors);
  Pattern p = store.PatternOf(0);
  EXPECT_EQ(p.NumVertices(), 3);
  EXPECT_EQ(p.NumEdges(), 2);
  EXPECT_EQ(p.Label(0), 9);
  EXPECT_TRUE(p.HasEdge(0, 1));
  EXPECT_EQ(p.EdgeLabel(0, 2), 1);
  Spider s = store.Materialize(0);
  EXPECT_EQ(s.support, 2);
  EXPECT_EQ(s.anchors, anchors);
  EXPECT_EQ(s.LeafKeys(), leaves);
  EXPECT_EQ(s.canonical, "h9,0:2,1:3");
  EXPECT_TRUE(s.IsAnchoredAt(6));
}

TEST(SpiderStoreTest, FromSpidersRoundTrip) {
  SpiderStore store;
  store.Append(0, {}, std::vector<VertexId>{0, 1}, /*closed=*/false);
  store.Append(1, std::vector<SpiderLeafKey>{{0, 0}},
               std::vector<VertexId>{2, 3, 4});
  SpiderStore rebuilt = SpiderStore::FromSpiders(store.MaterializeAll());
  EXPECT_EQ(StoreTranscript(rebuilt), StoreTranscript(store));
}

TEST(SpiderStoreTest, AppendPrefixConcatenates) {
  SpiderStore a;
  a.Append(0, std::vector<SpiderLeafKey>{{0, 1}}, std::vector<VertexId>{0});
  SpiderStore b;
  b.Append(1, std::vector<SpiderLeafKey>{{0, 2}, {0, 2}},
           std::vector<VertexId>{3, 5}, /*closed=*/false);
  b.Append(2, {}, std::vector<VertexId>{7});
  a.AppendPrefix(b, 1);  // only b's first spider
  ASSERT_EQ(a.size(), 2);
  EXPECT_EQ(a.head_label(1), 1);
  EXPECT_EQ(a.support(1), 2);
  EXPECT_FALSE(a.closed(1));
  ASSERT_EQ(a.leaves(1).size(), 2u);
  EXPECT_EQ(a.leaves(1)[0], (SpiderLeafKey{0, 2}));
  EXPECT_TRUE(a.IsAnchoredAt(1, 5));
  // Count beyond other.size() is clamped.
  SpiderStore c;
  c.AppendPrefix(b, 99);
  EXPECT_EQ(c.size(), 2);
}

TEST(SpiderStoreTest, SingleLabelGraphMinesIntoStore) {
  // A triangle of one label: one frequent head label, hub-free.
  GraphBuilder builder;
  builder.AddVertices(3, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  LabeledGraph g = std::move(builder.Build()).value();
  StarMinerConfig config;
  config.min_support = 3;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  const SpiderStore& store = result->store;
  // Stars: {}, {0}, {0,0} — all anchored at every vertex.
  ASSERT_EQ(store.size(), 3);
  for (int32_t id = 0; id < 3; ++id) {
    EXPECT_EQ(store.head_label(id), 0);
    EXPECT_EQ(store.support(id), 3);
  }
  EXPECT_EQ(store.NumVerticesOf(2), 3);
  // Sub-stars are non-closed (every extension keeps all three anchors).
  EXPECT_FALSE(store.closed(0));
  EXPECT_FALSE(store.closed(1));
  EXPECT_TRUE(store.closed(2));
}

TEST(SpiderStoreTest, HubHeavyScaleFreeGraphBudgetIsExactPrefix) {
  // BA graphs concentrate anchors on hubs; the global budget must still be
  // the exact canonical prefix, and the store must stay internally
  // consistent (sorted anchors, sorted leaves, star arity).
  Rng rng(11);
  GraphBuilder builder = GenerateBarabasiAlbert(600, 3, 6, &rng);
  LabeledGraph g = std::move(builder.Build()).value();
  StarMinerConfig config;
  config.min_support = 3;
  config.max_leaves = 4;
  Result<StarMineResult> full = MineStarSpiders(g, config);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->store.size(), 50);
  for (int32_t id = 0; id < static_cast<int32_t>(full->store.size()); ++id) {
    std::span<const SpiderLeafKey> leaves = full->store.leaves(id);
    EXPECT_TRUE(std::is_sorted(leaves.begin(), leaves.end()));
    std::span<const VertexId> anchors = full->store.anchors(id);
    EXPECT_TRUE(std::is_sorted(anchors.begin(), anchors.end()));
    EXPECT_GE(full->store.support(id), config.min_support);
    EXPECT_LE(static_cast<int32_t>(leaves.size()), config.max_leaves);
  }
  const int64_t budget = full->store.size() / 3;
  config.max_spiders = budget;
  ThreadPool pool(4);
  Result<StarMineResult> capped = MineStarSpiders(g, config, &pool);
  ASSERT_TRUE(capped.ok());
  EXPECT_TRUE(capped->truncated);
  ASSERT_EQ(capped->store.size(), budget);
  for (int32_t id = 0; id < static_cast<int32_t>(budget); ++id) {
    EXPECT_EQ(capped->store.head_label(id), full->store.head_label(id));
    std::span<const SpiderLeafKey> a = capped->store.leaves(id);
    std::span<const SpiderLeafKey> b = full->store.leaves(id);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    std::span<const VertexId> aa = capped->store.anchors(id);
    std::span<const VertexId> bb = full->store.anchors(id);
    EXPECT_TRUE(std::equal(aa.begin(), aa.end(), bb.begin(), bb.end()));
  }
  // The budgeted store's arena is proportionally smaller — the O(B) bound.
  EXPECT_LT(capped->store.TotalAnchors(), full->store.TotalAnchors());
}

}  // namespace
}  // namespace spidermine
