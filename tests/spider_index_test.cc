#include "spider/spider_index.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "spider/star_miner.h"

namespace spidermine {
namespace {

TEST(SpiderIndexTest, MapsAnchorsToSpiders) {
  std::vector<Spider> spiders(2);
  spiders[0].anchors = {0, 2};
  spiders[1].anchors = {2, 3};
  SpiderIndex index(&spiders, 5);
  EXPECT_EQ(index.size(), 2);
  ASSERT_EQ(index.SpidersAt(0).size(), 1u);
  EXPECT_EQ(index.SpidersAt(0)[0], 0);
  ASSERT_EQ(index.SpidersAt(2).size(), 2u);
  EXPECT_TRUE(index.SpidersAt(1).empty());
  EXPECT_TRUE(index.SpidersAt(4).empty());
}

TEST(SpiderIndexTest, AverageSpidersPerVertex) {
  std::vector<Spider> spiders(2);
  spiders[0].anchors = {0, 1};
  spiders[1].anchors = {1};
  SpiderIndex index(&spiders, 4);
  // 3 anchor incidences over 4 vertices.
  EXPECT_DOUBLE_EQ(index.AverageSpidersPerVertex(), 0.75);
}

TEST(SpiderIndexTest, ConsistentWithStarMiner) {
  GraphBuilder b;
  // Two identical 2-leaf stars.
  for (int copy = 0; copy < 2; ++copy) {
    VertexId c = b.AddVertex(0);
    b.AddVertex(1);
    b.AddVertex(1);
    b.AddEdge(c, c + 1);
    b.AddEdge(c, c + 2);
  }
  LabeledGraph g = std::move(b.Build()).value();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  SpiderIndex index(&result->spiders, g.NumVertices());
  // Every spider id listed at vertex v must actually anchor at v.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (int32_t sid : index.SpidersAt(v)) {
      EXPECT_TRUE(index.spider(sid).IsAnchoredAt(v));
    }
  }
  // And conversely every anchor incidence is indexed.
  int64_t total_incidences = 0;
  for (const Spider& s : result->spiders) {
    total_incidences += static_cast<int64_t>(s.anchors.size());
  }
  int64_t indexed = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    indexed += static_cast<int64_t>(index.SpidersAt(v).size());
  }
  EXPECT_EQ(indexed, total_incidences);
}

}  // namespace
}  // namespace spidermine
