#include "spider/spider_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/graph_builder.h"
#include "spider/star_miner.h"

namespace spidermine {
namespace {

/// A store with two spiders: head 0 anchored at {0, 2}, head 1 at {2, 3}.
SpiderStore TwoSpiderStore() {
  SpiderStore store;
  store.Append(0, {}, std::vector<VertexId>{0, 2});
  store.Append(1, {}, std::vector<VertexId>{2, 3});
  return store;
}

TEST(SpiderIndexTest, MapsAnchorsToSpiders) {
  SpiderStore store = TwoSpiderStore();
  SpiderIndex index(&store, 5);
  EXPECT_EQ(index.size(), 2);
  ASSERT_EQ(index.SpidersAt(0).size(), 1u);
  EXPECT_EQ(index.SpidersAt(0)[0], 0);
  ASSERT_EQ(index.SpidersAt(2).size(), 2u);
  EXPECT_TRUE(index.SpidersAt(1).empty());
  EXPECT_TRUE(index.SpidersAt(4).empty());
}

TEST(SpiderIndexTest, PerVertexListsAreAscending) {
  SpiderStore store = TwoSpiderStore();
  SpiderIndex index(&store, 5);
  std::span<const int32_t> at2 = index.SpidersAt(2);
  ASSERT_EQ(at2.size(), 2u);
  EXPECT_EQ(at2[0], 0);
  EXPECT_EQ(at2[1], 1);
}

TEST(SpiderIndexTest, AverageSpidersPerVertex) {
  SpiderStore store;
  store.Append(0, {}, std::vector<VertexId>{0, 1});
  store.Append(1, {}, std::vector<VertexId>{1});
  SpiderIndex index(&store, 4);
  // 3 anchor incidences over 4 vertices.
  EXPECT_DOUBLE_EQ(index.AverageSpidersPerVertex(), 0.75);
}

TEST(SpiderIndexTest, EmptyStore) {
  SpiderStore store;
  SpiderIndex index(&store, 3);
  EXPECT_EQ(index.size(), 0);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_TRUE(index.SpidersAt(v).empty());
  }
  EXPECT_DOUBLE_EQ(index.AverageSpidersPerVertex(), 0.0);
}

TEST(SpiderIndexTest, ConsistentWithStarMiner) {
  GraphBuilder b;
  // Two identical 2-leaf stars.
  for (int copy = 0; copy < 2; ++copy) {
    VertexId c = b.AddVertex(0);
    b.AddVertex(1);
    b.AddVertex(1);
    b.AddEdge(c, c + 1);
    b.AddEdge(c, c + 2);
  }
  LabeledGraph g = std::move(b.Build()).value();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  const SpiderStore& store = result->store;
  SpiderIndex index(&store, g.NumVertices());
  // Every spider id listed at vertex v must actually anchor at v.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (int32_t sid : index.SpidersAt(v)) {
      EXPECT_TRUE(store.IsAnchoredAt(sid, v));
    }
  }
  // And conversely every anchor incidence is indexed.
  int64_t indexed = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    indexed += static_cast<int64_t>(index.SpidersAt(v).size());
  }
  EXPECT_EQ(indexed, store.TotalAnchors());
}

}  // namespace
}  // namespace spidermine
