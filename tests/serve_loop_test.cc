#include "tools/serve_loop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

#include "common/rng.h"
#include "common/strings.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spider/spider_store_io.h"
#include "spider/spider_store_mmap.h"
#include "spidermine/session.h"
#include "tools/cli_commands.h"

/// The serve protocol over string streams: one response line per request
/// line, ids echoed (concurrent queries complete out of order), malformed
/// requests answered rather than fatal, shutdown acknowledged last, and
/// concurrent serving returning exactly the responses of --max-inflight=1.
/// Plus the multi-client server: concurrent unix/TCP connections
/// multiplexed by one event loop, the admission gate's "overloaded"
/// rejection, and the result cache's byte-identical replays.

namespace spidermine::cli {
namespace {

LabeledGraph TestGraph() {
  Rng rng(11);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.0, 14, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.15, 14, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

Result<MiningSession> TestSession(const LabeledGraph* graph) {
  SessionConfig config;
  config.min_support = 3;
  config.num_threads = 2;
  return MiningSession::Create(graph, config);
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  for (const std::string& line : Split(text, '\n')) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ServeJsonTest, ParsesFlatObjects) {
  Result<JsonObject> object = ParseJsonObject(
      "  {\"id\": 7, \"k\": 3, \"measure\": \"mni\", \"strict_dmax\": true, "
      "\"note\": null, \"epsilon\": 0.25}  ");
  ASSERT_TRUE(object.ok()) << object.status();
  EXPECT_EQ(object->size(), 6u);
  EXPECT_EQ(object->at("id").kind, JsonValue::Kind::kNumber);
  EXPECT_EQ(object->at("id").number_value, 7.0);
  EXPECT_EQ(object->at("measure").string_value, "mni");
  EXPECT_TRUE(object->at("strict_dmax").bool_value);
  EXPECT_EQ(object->at("note").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(object->at("epsilon").number_value, 0.25);
  Result<JsonObject> empty = ParseJsonObject("{}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ServeJsonTest, ParsesStringEscapes) {
  Result<JsonObject> object =
      ParseJsonObject("{\"id\": \"a\\\"b\\\\c\\n\\u0041\"}");
  ASSERT_TRUE(object.ok()) << object.status();
  EXPECT_EQ(object->at("id").string_value, "a\"b\\c\nA");
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "[1,2]", "{\"k\":}", "{\"k\":1,}", "{\"k\":1} trailing",
        "{\"k\":1,\"k\":2}", "{\"nested\":{\"x\":1}}", "{\"a\":[1]}",
        "{\"s\":\"unterminated}", "{\"u\":\"\\ud800\"}", "{k:1}",
        // Truncated requests must error, not read past the line.
        "{", "{\"a\":1,", "{\"a\":", "{\"a\"",
        // strtod-isms that are not JSON numbers (inf/nan would also be
        // echoed back as invalid response JSON).
        "{\"id\":inf}", "{\"id\":nan}", "{\"id\":0x1A}", "{\"id\":-}",
        "{\"id\":1.}", "{\"id\":1e}", "{\"id\":1e300000}"}) {
    Result<JsonObject> object = ParseJsonObject(bad);
    EXPECT_FALSE(object.ok()) << "accepted: " << bad;
    EXPECT_EQ(object.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServeJsonTest, EscapeRoundTripsControlCharacters) {
  EXPECT_EQ(EscapeJsonString("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(EscapeJsonString(std::string(1, '\x01')), "\\u0001");
}

TEST(ServeJsonTest, QueryFromJsonMapsEveryKey) {
  Result<JsonObject> object = ParseJsonObject(
      "{\"support\": 4, \"k\": 3, \"dmax\": 6, \"epsilon\": 0.2, "
      "\"vmin\": 9, \"seed\": 99, \"seed_count\": 12, \"restarts\": 2, "
      "\"time_budget\": 1.5, \"measure\": \"count\", "
      "\"strict_dmax\": true, \"id\": 1}");
  ASSERT_TRUE(object.ok()) << object.status();
  Result<TopKQuery> query = QueryFromJson(*object);
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->min_support, 4);
  EXPECT_EQ(query->k, 3);
  EXPECT_EQ(query->dmax, 6);
  EXPECT_EQ(query->epsilon, 0.2);
  EXPECT_EQ(query->vmin, 9);
  EXPECT_EQ(query->rng_seed, 99u);
  EXPECT_EQ(query->seed_count_override, 12);
  EXPECT_EQ(query->restarts, 2);
  EXPECT_EQ(query->time_budget_seconds, 1.5);
  EXPECT_EQ(query->support_measure, SupportMeasureKind::kEmbeddingCount);
  EXPECT_TRUE(query->enforce_dmax_on_results);
}

TEST(ServeJsonTest, QueryFromJsonRejectsUnknownAndMistyped) {
  Result<JsonObject> unknown = ParseJsonObject("{\"topk\": 5}");
  ASSERT_TRUE(unknown.ok());
  Result<TopKQuery> q1 = QueryFromJson(*unknown);
  EXPECT_FALSE(q1.ok());
  EXPECT_NE(q1.status().message().find("topk"), std::string::npos);

  Result<JsonObject> mistyped = ParseJsonObject("{\"k\": \"ten\"}");
  ASSERT_TRUE(mistyped.ok());
  EXPECT_FALSE(QueryFromJson(*mistyped).ok());

  Result<JsonObject> fractional = ParseJsonObject("{\"k\": 2.5}");
  ASSERT_TRUE(fractional.ok());
  EXPECT_FALSE(QueryFromJson(*fractional).ok());

  // int32 fields reject out-of-range values instead of wrapping:
  // 2^32 + 3 would otherwise narrow to a "valid" k = 3.
  Result<JsonObject> wide = ParseJsonObject("{\"k\": 4294967299}");
  ASSERT_TRUE(wide.ok());
  Result<TopKQuery> q2 = QueryFromJson(*wide);
  EXPECT_FALSE(q2.ok());
  EXPECT_NE(q2.status().message().find("out of range"), std::string::npos);
}

TEST(ServeJsonTest, MeasureAndTxnSampleKeysMapAndReject) {
  // The two workload-selection keys: every published measure name maps to
  // its enum, and "txn_sample" rides along as a plain integer.
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, SupportMeasureKind>>{
           {"vertex-mis", SupportMeasureKind::kGreedyMisVertex},
           {"edge-mis", SupportMeasureKind::kGreedyMisEdge},
           {"mni", SupportMeasureKind::kMinImage},
           {"count", SupportMeasureKind::kEmbeddingCount},
           {"homomorphism", SupportMeasureKind::kHomomorphism},
           {"transaction", SupportMeasureKind::kTransaction}}) {
    Result<JsonObject> object = ParseJsonObject(
        StrCat("{\"k\": 3, \"measure\": \"", name, "\"}"));
    ASSERT_TRUE(object.ok());
    Result<TopKQuery> query = QueryFromJson(*object);
    ASSERT_TRUE(query.ok()) << name << ": " << query.status();
    EXPECT_EQ(query->support_measure, kind) << name;
  }
  Result<JsonObject> sampled = ParseJsonObject(
      "{\"k\": 3, \"measure\": \"transaction\", \"txn_sample\": 40}");
  ASSERT_TRUE(sampled.ok());
  Result<TopKQuery> query = QueryFromJson(*sampled);
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->support_measure, SupportMeasureKind::kTransaction);
  EXPECT_EQ(query->txn_sample, 40);

  // Malformed values fail at parse time with a pointed message.
  Result<JsonObject> unknown =
      ParseJsonObject("{\"measure\": \"betweenness\"}");
  ASSERT_TRUE(unknown.ok());
  Result<TopKQuery> q1 = QueryFromJson(*unknown);
  EXPECT_FALSE(q1.ok());
  EXPECT_NE(q1.status().message().find("betweenness"), std::string::npos);
  Result<JsonObject> mistyped = ParseJsonObject("{\"measure\": 3}");
  ASSERT_TRUE(mistyped.ok());
  EXPECT_FALSE(QueryFromJson(*mistyped).ok());
  Result<JsonObject> fractional = ParseJsonObject("{\"txn_sample\": 2.5}");
  ASSERT_TRUE(fractional.ok());
  EXPECT_FALSE(QueryFromJson(*fractional).ok());
}

TEST(ServeLoopTest, MeasureErrorsAnswerWithoutKillingTheStream) {
  // Workload-selection mistakes are per-request errors, never fatal: the
  // loop answers each one and keeps serving; only the valid queries run.
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok()) << session.status();

  std::istringstream in(
      // Unknown measure name: rejected at parse time.
      "{\"id\": 1, \"k\": 3, \"measure\": \"pagerank\"}\n"
      // txn_sample without the transaction measure: rejected by Validate.
      "{\"id\": 2, \"k\": 3, \"vmin\": 8, \"txn_sample\": 5}\n"
      // Negative sample size: out of range.
      "{\"id\": 3, \"k\": 3, \"measure\": \"transaction\", "
      "\"txn_sample\": -1}\n"
      // Transaction measure against a session with no transaction source.
      "{\"id\": 4, \"k\": 3, \"vmin\": 8, \"measure\": \"transaction\"}\n"
      // The stream is still healthy: a homomorphism query succeeds.
      "{\"id\": 5, \"k\": 3, \"seed\": 2, \"vmin\": 8, \"seed_count\": 10, "
      "\"measure\": \"homomorphism\"}\n"
      "{\"id\": 6, \"cmd\": \"shutdown\"}\n");
  std::ostringstream out, err;
  ServeOptions options;
  options.max_inflight = 2;
  options.summary = false;
  ServeStats stats;
  ASSERT_TRUE(RunServeLoop(*session, in, out, err, options, &stats).ok());

  std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 6u);  // every request answered, none dropped
  auto line_with = [&lines](std::string_view needle) {
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) return line;
    }
    return std::string();
  };
  EXPECT_NE(line_with("\"id\":1").find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line_with("\"id\":1").find("pagerank"), std::string::npos);
  EXPECT_NE(line_with("\"id\":2").find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line_with("\"id\":2").find("txn_sample"), std::string::npos);
  EXPECT_NE(line_with("\"id\":3").find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line_with("\"id\":4").find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line_with("\"id\":4").find("txn_of_vertex or txn_map"),
            std::string::npos);
  EXPECT_NE(line_with("\"id\":5").find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(lines.back(),
            "{\"id\":6,\"line\":6,\"ok\":true,\"shutdown\":true}");
  EXPECT_EQ(session->queries_run(), 1);  // only the valid query ran
  EXPECT_EQ(stats.errors, 4);
}

TEST(ServeLoopTest, MixedMeasureConcurrentMatchesSerial) {
  // Interleaved clients asking for different measures must not leak state
  // into each other: the concurrent transcript equals the serial one.
  LabeledGraph g = TestGraph();
  Result<MiningSession> serial_session = TestSession(&g);
  Result<MiningSession> concurrent_session = TestSession(&g);
  ASSERT_TRUE(serial_session.ok());
  ASSERT_TRUE(concurrent_session.ok());

  const std::vector<std::string> measures = {
      "vertex-mis", "edge-mis", "mni", "count", "homomorphism", "mni"};
  std::string requests;
  for (size_t i = 0; i < measures.size(); ++i) {
    requests += StrCat("{\"id\": ", i + 1, ", \"k\": 3, \"seed\": ",
                       200 + i, ", \"vmin\": 8, \"seed_count\": 10, "
                       "\"measure\": \"", measures[i], "\"}\n");
  }
  auto run = [&requests](const MiningSession& session, int32_t inflight) {
    std::istringstream in(requests);
    std::ostringstream out, err;
    ServeOptions options;
    options.max_inflight = inflight;
    options.summary = false;
    ServeStats stats;
    EXPECT_TRUE(RunServeLoop(session, in, out, err, options, &stats).ok());
    EXPECT_EQ(stats.answered, 6);
    std::vector<std::string> lines = Lines(out.str());
    for (std::string& line : lines) {
      size_t begin = line.find("\"seconds\":");
      size_t end = line.find(",\"timed_out\"");
      EXPECT_NE(begin, std::string::npos);
      EXPECT_NE(end, std::string::npos);
      line.replace(begin, end - begin, "\"seconds\":X");
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(run(*serial_session, 1), run(*concurrent_session, 4));
}

TEST(ServeLoopTest, AnswersEveryRequestAndShutsDownLast) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok()) << session.status();

  std::istringstream in(
      "{\"id\": 1, \"k\": 3, \"seed\": 2, \"vmin\": 8, \"seed_count\": 10}\n"
      "\n"
      "{\"id\": \"text-id\", \"k\": 2, \"seed\": 5, \"vmin\": 8, "
      "\"seed_count\": 10}\n"
      "{\"id\": 9, \"k\": 0}\n"
      "not json\n"
      "{\"id\": 10, \"cmd\": \"shutdown\"}\n");
  std::ostringstream out;
  std::ostringstream err;
  ServeOptions options;
  options.max_inflight = 2;
  ServeStats stats;
  Status status =
      RunServeLoop(*session, in, out, err, options, &stats);
  ASSERT_TRUE(status.ok()) << status;

  std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 5u);  // one response per non-empty request line
  // The shutdown acknowledgment is the final line, after the drain.
  EXPECT_EQ(lines.back(),
            "{\"id\":10,\"line\":6,\"ok\":true,\"shutdown\":true}");
  auto contains = [&lines](std::string_view needle) {
    return std::any_of(lines.begin(), lines.end(),
                       [needle](const std::string& line) {
                         return line.find(needle) != std::string::npos;
                       });
  };
  // "line" is the physical input line: the blank line 2 advances it
  // (that is what keeps client-side correlation unambiguous).
  EXPECT_TRUE(contains("\"id\":1,\"line\":1,\"ok\":true"));
  EXPECT_TRUE(contains("\"id\":\"text-id\",\"line\":3,\"ok\":true"));
  EXPECT_TRUE(contains("\"id\":9,\"line\":4,\"ok\":false"));  // k=0 rejected
  // Unparseable lines echo id null; "line" still pins them to line 5.
  EXPECT_TRUE(contains(
      "{\"id\":null,\"line\":5,\"ok\":false,\"error\":\"InvalidArgument: "
      "bad JSON"));

  EXPECT_EQ(stats.requests, 5);
  EXPECT_EQ(stats.answered, 3);  // 2 queries + shutdown ack
  EXPECT_EQ(stats.errors, 2);
  EXPECT_TRUE(stats.shutdown_requested);
  EXPECT_EQ(session->queries_run(), 2);
  EXPECT_NE(err.str().find("serve: 5 requests"), std::string::npos);
}

TEST(ServeLoopTest, ConcurrentServingMatchesSerialResponses) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> serial_session = TestSession(&g);
  Result<MiningSession> concurrent_session = TestSession(&g);
  ASSERT_TRUE(serial_session.ok());
  ASSERT_TRUE(concurrent_session.ok());

  // The same 6 requests; responses are keyed by id, so after sorting the
  // two transports must agree byte-for-byte except the per-query
  // "seconds" timing, which is rewritten to a fixed token first.
  std::string requests;
  for (int i = 1; i <= 6; ++i) {
    requests += StrCat("{\"id\": ", i, ", \"k\": 3, \"seed\": ", 100 + i,
                       ", \"vmin\": 8, \"seed_count\": 10}\n");
  }
  auto run = [&requests](const MiningSession& session, int32_t inflight) {
    std::istringstream in(requests);
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    options.max_inflight = inflight;
    options.summary = false;
    ServeStats stats;
    Status status = RunServeLoop(session, in, out, err, options, &stats);
    EXPECT_TRUE(status.ok()) << status;
    EXPECT_EQ(stats.answered, 6);
    std::vector<std::string> lines = Lines(out.str());
    for (std::string& line : lines) {
      size_t begin = line.find("\"seconds\":");
      size_t end = line.find(",\"timed_out\"");
      EXPECT_NE(begin, std::string::npos);
      EXPECT_NE(end, std::string::npos);
      line.replace(begin, end - begin, "\"seconds\":X");
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };

  std::vector<std::string> serial = run(*serial_session, 1);
  std::vector<std::string> concurrent = run(*concurrent_session, 4);
  EXPECT_EQ(serial, concurrent);
}

TEST(ServePrecheckTest, MissingArtifactFailsFast) {
  Status status = PrecheckStage1Artifact("/nonexistent/dir/stage1.sm2");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("cannot read"), std::string::npos);
}

TEST(ServePrecheckTest, UnrecognizedMagicFailsFast) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_precheck_garbage.bin")
          .string();
  std::ofstream(path, std::ios::binary) << "this is not a stage1 artifact";
  Status status = PrecheckStage1Artifact(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("not a stage1 artifact"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(ServePrecheckTest, RecognizedMagicsPassTheSniff) {
  // The precheck is a four-byte magic sniff, not full validation: its job
  // is to reject obviously-wrong paths before the expensive graph load.
  // Structural errors still surface at LoadStage1.
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_precheck_magic.bin")
          .string();
  for (const std::string magic :
       {std::string(kSm1Magic, 4), std::string(kSm2Magic, 4)}) {
    std::ofstream(path, std::ios::binary) << magic << "tail bytes";
    EXPECT_TRUE(PrecheckStage1Artifact(path).ok()) << magic;
  }
  std::filesystem::remove(path);
}

TEST(ServePrecheckTest, CmdServeChecksArtifactBeforeGraph) {
  // Both paths are missing; the error must be about the artifact, proving
  // the precheck runs before the graph is loaded (fail fast, not after
  // seconds of graph parsing and pool construction).
  std::istringstream in("");
  std::ostringstream out, err;
  Status status = CmdServe({"/nonexistent/graph.bin",
                            "/nonexistent/dir/stage1.sm2"},
                           in, out, err);
  ASSERT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("stage1 artifact"), std::string::npos);
}

TEST(ServeLoopTest, RejectsInvalidInflight) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok());
  std::istringstream in("");
  std::ostringstream out, err;
  ServeOptions options;
  options.max_inflight = 0;
  Status status = RunServeLoop(*session, in, out, err, options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

#if defined(__unix__) || defined(__APPLE__)

/// A blocking test client over a connected socket: raw sends, line reads.
class TestClient {
 public:
  static TestClient ConnectUnix(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                        sizeof(address)),
              0)
        << std::strerror(errno);
    return TestClient(fd);
  }
  static TestClient ConnectTcp(int32_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                        sizeof(address)),
              0)
        << std::strerror(errno);
    return TestClient(fd);
  }

  explicit TestClient(int fd) : fd_(fd) {}
  TestClient(TestClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  TestClient(const TestClient&) = delete;
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& text) {
    size_t offset = 0;
    while (offset < text.size()) {
      ssize_t n = ::write(fd_, text.data() + offset, text.size() - offset);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0) << std::strerror(errno);
      offset += static_cast<size_t>(n);
    }
  }

  /// Next '\n'-terminated line (without the newline); "" on EOF.
  std::string ReadLine() {
    for (;;) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[512];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Runs RunServeServer on its own thread; the constructor returns once
/// every listener is bound (so clients can connect immediately), Join()
/// returns once the server exited (after a client sent shutdown).
class ServerRunner {
 public:
  ServerRunner(const MiningSession& session, ServeTransportOptions transport,
               const ServeOptions& options) {
    std::promise<ServeEndpoints> ready;
    std::future<ServeEndpoints> ready_future = ready.get_future();
    transport.on_ready = [&ready](const ServeEndpoints& endpoints) {
      ready.set_value(endpoints);
    };
    thread_ = std::thread([this, &session, transport, options] {
      status_ = RunServeServer(session, transport, err_, options, &stats_);
    });
    endpoints_ = ready_future.get();
  }
  ~ServerRunner() {
    if (thread_.joinable()) thread_.join();
  }

  void Join() { thread_.join(); }
  const ServeEndpoints& endpoints() const { return endpoints_; }
  const Status& status() const { return status_; }        // after Join()
  const ServeStats& stats() const { return stats_; }      // after Join()
  std::string err_text() const { return err_.str(); }     // after Join()

 private:
  std::thread thread_;
  ServeEndpoints endpoints_;
  Status status_;
  ServeStats stats_;
  std::ostringstream err_;
};

std::string TempSocketPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          StrCat("sm_serve_", tag, "_", ::getpid(), ".sock"))
      .string();
}

/// Rewrites the per-request "seconds" timing to a fixed token so
/// responses compare byte-for-byte across transports and cache hits.
std::string NormalizeSeconds(std::string line) {
  const size_t begin = line.find("\"seconds\":");
  const size_t end = line.find(",\"timed_out\"");
  if (begin != std::string::npos && end != std::string::npos) {
    line.replace(begin, end - begin, "\"seconds\":X");
  }
  return line;
}

/// Rewrites the "line" correlation key to a fixed token: per-connection
/// line numbers legitimately differ from the serial stream's.
std::string NormalizeLineKey(std::string line) {
  const size_t key = line.find(",\"line\":");
  if (key == std::string::npos) return line;
  const size_t value_begin = key + std::string(",\"line\":").size();
  const size_t value_end = line.find(',', value_begin);
  if (value_end != std::string::npos) {
    line.replace(value_begin, value_end - value_begin, "X");
  }
  return line;
}

TEST(ServeServerTest, ConcurrentClientsMatchSerialByteForByte) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> server_session = TestSession(&g);
  Result<MiningSession> serial_session = TestSession(&g);
  ASSERT_TRUE(server_session.ok()) << server_session.status();
  ASSERT_TRUE(serial_session.ok());

  // 4 clients x 2 interleaved requests each, every query distinct.
  const std::string socket_path = TempSocketPath("multi");
  ServeTransportOptions transport;
  transport.socket_path = socket_path;
  ServeOptions options;
  // Every client pipelines its second request before reading the first
  // response, so all 8 can be in flight at once; admit them all (the
  // admission gate has its own dedicated test below).
  options.max_inflight = 8;
  options.summary = false;
  ServerRunner server(*server_session, transport, options);

  std::vector<TestClient> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(TestClient::ConnectUnix(socket_path));
  }
  auto request = [](int id) {
    return StrCat("{\"id\": ", id, ", \"k\": 3, \"seed\": ", 100 + id,
                  ", \"vmin\": 8, \"seed_count\": 10}\n");
  };
  // Interleave: every client sends its first request before any sends its
  // second, so requests from different connections overlap in flight.
  for (int c = 0; c < 4; ++c) clients[static_cast<size_t>(c)].Send(request(c + 1));
  for (int c = 0; c < 4; ++c) clients[static_cast<size_t>(c)].Send(request(c + 5));
  std::vector<std::string> server_lines;
  for (int c = 0; c < 4; ++c) {
    server_lines.push_back(clients[static_cast<size_t>(c)].ReadLine());
    server_lines.push_back(clients[static_cast<size_t>(c)].ReadLine());
  }
  clients[0].Send("{\"id\": 99, \"cmd\": \"shutdown\"}\n");
  const std::string ack = clients[0].ReadLine();
  EXPECT_NE(ack.find("\"shutdown\":true"), std::string::npos) << ack;
  EXPECT_EQ(clients[0].ReadLine(), "");  // server closed the connection
  server.Join();
  ASSERT_TRUE(server.status().ok()) << server.status();
  EXPECT_TRUE(server.stats().shutdown_requested);
  EXPECT_FALSE(std::filesystem::exists(socket_path));  // unlinked on exit

  // The same 8 queries through the serial stream loop on a fresh session.
  std::string requests;
  for (int id = 1; id <= 8; ++id) requests += request(id);
  std::istringstream in(requests);
  std::ostringstream out, err;
  ServeOptions serial_options;
  serial_options.max_inflight = 1;
  serial_options.summary = false;
  ASSERT_TRUE(
      RunServeLoop(*serial_session, in, out, err, serial_options).ok());
  std::vector<std::string> serial_lines = Lines(out.str());

  ASSERT_EQ(server_lines.size(), serial_lines.size());
  for (auto* lines : {&server_lines, &serial_lines}) {
    for (std::string& line : *lines) {
      line = NormalizeLineKey(NormalizeSeconds(std::move(line)));
    }
    std::sort(lines->begin(), lines->end());
  }
  EXPECT_EQ(server_lines, serial_lines);
}

TEST(ServeServerTest, IdleClientDoesNotStallOthers) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok());

  const std::string socket_path = TempSocketPath("stall");
  ServeTransportOptions transport;
  transport.socket_path = socket_path;
  ServeOptions options;
  options.max_inflight = 2;
  options.summary = false;
  ServerRunner server(*session, transport, options);

  // The serial server accepted one connection at a time: an idle first
  // client starved everyone behind it. The event loop must answer the
  // second client while the first stays silent.
  TestClient idle = TestClient::ConnectUnix(socket_path);
  TestClient active = TestClient::ConnectUnix(socket_path);
  active.Send(
      "{\"id\": 1, \"k\": 3, \"seed\": 7, \"vmin\": 8, \"seed_count\": 10}\n");
  const std::string response = active.ReadLine();
  EXPECT_NE(response.find("\"id\":1,\"line\":1,\"ok\":true"),
            std::string::npos)
      << response;
  active.Send("{\"cmd\": \"shutdown\"}\n");
  EXPECT_NE(active.ReadLine().find("\"shutdown\":true"), std::string::npos);
  EXPECT_EQ(idle.ReadLine(), "");  // shutdown closes the idle client too
  server.Join();
  ASSERT_TRUE(server.status().ok()) << server.status();
}

TEST(ServeServerTest, OverloadedRequestsAreRejectedImmediately) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok());

  const std::string socket_path = TempSocketPath("overload");
  ServeTransportOptions transport;
  transport.socket_path = socket_path;
  ServeOptions options;
  options.max_inflight = 1;
  options.summary = false;
  ServerRunner server(*session, transport, options);

  // Both request lines arrive in one segment, so the loop frames and
  // processes them back-to-back: the first occupies the only admission
  // slot, the second MUST be rejected (the gate never queues).
  TestClient client = TestClient::ConnectUnix(socket_path);
  client.Send(
      "{\"id\": 1, \"k\": 3, \"seed\": 7, \"restarts\": 3, \"vmin\": 8, "
      "\"seed_count\": 10}\n"
      "{\"id\": 2, \"k\": 3, \"seed\": 8, \"vmin\": 8, "
      "\"seed_count\": 10}\n");
  std::string first = client.ReadLine();
  std::string second = client.ReadLine();
  // The rejection is synchronous, the admitted query's response is not —
  // order by the "line" key instead of arrival.
  if (first.find("\"line\":1") == std::string::npos) std::swap(first, second);
  EXPECT_NE(first.find("\"id\":1,\"line\":1,\"ok\":true"), std::string::npos)
      << first;
  EXPECT_NE(second.find("\"id\":2,\"line\":2,\"ok\":false,\"error\":"
                        "\"overloaded\",\"retry_after_ms\":"),
            std::string::npos)
      << second;
  client.Send("{\"cmd\": \"shutdown\"}\n");
  EXPECT_NE(client.ReadLine().find("\"shutdown\":true"), std::string::npos);
  server.Join();
  ASSERT_TRUE(server.status().ok()) << server.status();
  EXPECT_EQ(server.stats().rejected, 1);
}

TEST(ServeServerTest, TcpTransportAndCacheHitsAreByteIdentical) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok());

  ResultCache cache(ResultCacheConfig{});
  ServeTransportOptions transport;
  transport.tcp_port = 0;  // ephemeral, reported via on_ready
  ServeOptions options;
  options.max_inflight = 2;
  options.summary = false;
  options.cache = &cache;
  ServerRunner server(*session, transport, options);
  ASSERT_GT(server.endpoints().tcp_port, 0);

  // The same query from two TCP clients, sequentially: the second is a
  // cache hit — byte-identical modulo the "seconds" timing — and bypasses
  // RunQuery (queries_run stays 1). `emb_budget` differs on purpose:
  // results are invariant to it, so the canonical hash ignores it.
  const std::string query =
      "{\"id\": 1, \"k\": 3, \"seed\": 7, \"vmin\": 8, \"seed_count\": 10";
  TestClient first = TestClient::ConnectTcp(server.endpoints().tcp_port);
  first.Send(query + "}\n");
  const std::string cold = first.ReadLine();
  EXPECT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;

  TestClient second = TestClient::ConnectTcp(server.endpoints().tcp_port);
  second.Send(query + ", \"emb_budget\": 123456}\n");
  const std::string warm = second.ReadLine();
  EXPECT_EQ(NormalizeSeconds(cold), NormalizeSeconds(warm));
  EXPECT_EQ(session->queries_run(), 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);

  second.Send("{\"cmd\": \"shutdown\"}\n");
  EXPECT_NE(second.ReadLine().find("\"shutdown\":true"), std::string::npos);
  server.Join();
  ASSERT_TRUE(server.status().ok()) << server.status();
  // The summary was suppressed, but the cache counters reach the serving
  // snapshot that a summary would render.
  EXPECT_EQ(cache.stats().entries, 1);
}

#endif  // unix server tests

}  // namespace
}  // namespace spidermine::cli
