#include "tools/serve_loop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spider/spider_store_io.h"
#include "spider/spider_store_mmap.h"
#include "spidermine/session.h"
#include "tools/cli_commands.h"

/// The serve protocol over string streams: one response line per request
/// line, ids echoed (concurrent queries complete out of order), malformed
/// requests answered rather than fatal, shutdown acknowledged last, and
/// concurrent serving returning exactly the responses of --max-inflight=1.

namespace spidermine::cli {
namespace {

LabeledGraph TestGraph() {
  Rng rng(11);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.0, 14, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.15, 14, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

Result<MiningSession> TestSession(const LabeledGraph* graph) {
  SessionConfig config;
  config.min_support = 3;
  config.num_threads = 2;
  return MiningSession::Create(graph, config);
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  for (const std::string& line : Split(text, '\n')) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ServeJsonTest, ParsesFlatObjects) {
  Result<JsonObject> object = ParseJsonObject(
      "  {\"id\": 7, \"k\": 3, \"measure\": \"mni\", \"strict_dmax\": true, "
      "\"note\": null, \"epsilon\": 0.25}  ");
  ASSERT_TRUE(object.ok()) << object.status();
  EXPECT_EQ(object->size(), 6u);
  EXPECT_EQ(object->at("id").kind, JsonValue::Kind::kNumber);
  EXPECT_EQ(object->at("id").number_value, 7.0);
  EXPECT_EQ(object->at("measure").string_value, "mni");
  EXPECT_TRUE(object->at("strict_dmax").bool_value);
  EXPECT_EQ(object->at("note").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(object->at("epsilon").number_value, 0.25);
  Result<JsonObject> empty = ParseJsonObject("{}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ServeJsonTest, ParsesStringEscapes) {
  Result<JsonObject> object =
      ParseJsonObject("{\"id\": \"a\\\"b\\\\c\\n\\u0041\"}");
  ASSERT_TRUE(object.ok()) << object.status();
  EXPECT_EQ(object->at("id").string_value, "a\"b\\c\nA");
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "[1,2]", "{\"k\":}", "{\"k\":1,}", "{\"k\":1} trailing",
        "{\"k\":1,\"k\":2}", "{\"nested\":{\"x\":1}}", "{\"a\":[1]}",
        "{\"s\":\"unterminated}", "{\"u\":\"\\ud800\"}", "{k:1}",
        // Truncated requests must error, not read past the line.
        "{", "{\"a\":1,", "{\"a\":", "{\"a\"",
        // strtod-isms that are not JSON numbers (inf/nan would also be
        // echoed back as invalid response JSON).
        "{\"id\":inf}", "{\"id\":nan}", "{\"id\":0x1A}", "{\"id\":-}",
        "{\"id\":1.}", "{\"id\":1e}", "{\"id\":1e300000}"}) {
    Result<JsonObject> object = ParseJsonObject(bad);
    EXPECT_FALSE(object.ok()) << "accepted: " << bad;
    EXPECT_EQ(object.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServeJsonTest, EscapeRoundTripsControlCharacters) {
  EXPECT_EQ(EscapeJsonString("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(EscapeJsonString(std::string(1, '\x01')), "\\u0001");
}

TEST(ServeJsonTest, QueryFromJsonMapsEveryKey) {
  Result<JsonObject> object = ParseJsonObject(
      "{\"support\": 4, \"k\": 3, \"dmax\": 6, \"epsilon\": 0.2, "
      "\"vmin\": 9, \"seed\": 99, \"seed_count\": 12, \"restarts\": 2, "
      "\"time_budget\": 1.5, \"measure\": \"count\", "
      "\"strict_dmax\": true, \"id\": 1}");
  ASSERT_TRUE(object.ok()) << object.status();
  Result<TopKQuery> query = QueryFromJson(*object);
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->min_support, 4);
  EXPECT_EQ(query->k, 3);
  EXPECT_EQ(query->dmax, 6);
  EXPECT_EQ(query->epsilon, 0.2);
  EXPECT_EQ(query->vmin, 9);
  EXPECT_EQ(query->rng_seed, 99u);
  EXPECT_EQ(query->seed_count_override, 12);
  EXPECT_EQ(query->restarts, 2);
  EXPECT_EQ(query->time_budget_seconds, 1.5);
  EXPECT_EQ(query->support_measure, SupportMeasureKind::kEmbeddingCount);
  EXPECT_TRUE(query->enforce_dmax_on_results);
}

TEST(ServeJsonTest, QueryFromJsonRejectsUnknownAndMistyped) {
  Result<JsonObject> unknown = ParseJsonObject("{\"topk\": 5}");
  ASSERT_TRUE(unknown.ok());
  Result<TopKQuery> q1 = QueryFromJson(*unknown);
  EXPECT_FALSE(q1.ok());
  EXPECT_NE(q1.status().message().find("topk"), std::string::npos);

  Result<JsonObject> mistyped = ParseJsonObject("{\"k\": \"ten\"}");
  ASSERT_TRUE(mistyped.ok());
  EXPECT_FALSE(QueryFromJson(*mistyped).ok());

  Result<JsonObject> fractional = ParseJsonObject("{\"k\": 2.5}");
  ASSERT_TRUE(fractional.ok());
  EXPECT_FALSE(QueryFromJson(*fractional).ok());

  // int32 fields reject out-of-range values instead of wrapping:
  // 2^32 + 3 would otherwise narrow to a "valid" k = 3.
  Result<JsonObject> wide = ParseJsonObject("{\"k\": 4294967299}");
  ASSERT_TRUE(wide.ok());
  Result<TopKQuery> q2 = QueryFromJson(*wide);
  EXPECT_FALSE(q2.ok());
  EXPECT_NE(q2.status().message().find("out of range"), std::string::npos);
}

TEST(ServeLoopTest, AnswersEveryRequestAndShutsDownLast) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok()) << session.status();

  std::istringstream in(
      "{\"id\": 1, \"k\": 3, \"seed\": 2, \"vmin\": 8, \"seed_count\": 10}\n"
      "\n"
      "{\"id\": \"text-id\", \"k\": 2, \"seed\": 5, \"vmin\": 8, "
      "\"seed_count\": 10}\n"
      "{\"id\": 9, \"k\": 0}\n"
      "not json\n"
      "{\"id\": 10, \"cmd\": \"shutdown\"}\n");
  std::ostringstream out;
  std::ostringstream err;
  ServeOptions options;
  options.max_inflight = 2;
  ServeStats stats;
  Status status =
      RunServeLoop(*session, in, out, err, options, &stats);
  ASSERT_TRUE(status.ok()) << status;

  std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 5u);  // one response per non-empty request line
  // The shutdown acknowledgment is the final line, after the drain.
  EXPECT_EQ(lines.back(),
            "{\"id\":10,\"line\":6,\"ok\":true,\"shutdown\":true}");
  auto contains = [&lines](std::string_view needle) {
    return std::any_of(lines.begin(), lines.end(),
                       [needle](const std::string& line) {
                         return line.find(needle) != std::string::npos;
                       });
  };
  // "line" is the physical input line: the blank line 2 advances it
  // (that is what keeps client-side correlation unambiguous).
  EXPECT_TRUE(contains("\"id\":1,\"line\":1,\"ok\":true"));
  EXPECT_TRUE(contains("\"id\":\"text-id\",\"line\":3,\"ok\":true"));
  EXPECT_TRUE(contains("\"id\":9,\"line\":4,\"ok\":false"));  // k=0 rejected
  // Unparseable lines echo id null; "line" still pins them to line 5.
  EXPECT_TRUE(contains(
      "{\"id\":null,\"line\":5,\"ok\":false,\"error\":\"InvalidArgument: "
      "bad JSON"));

  EXPECT_EQ(stats.requests, 5);
  EXPECT_EQ(stats.answered, 3);  // 2 queries + shutdown ack
  EXPECT_EQ(stats.errors, 2);
  EXPECT_TRUE(stats.shutdown_requested);
  EXPECT_EQ(session->queries_run(), 2);
  EXPECT_NE(err.str().find("serve: 5 requests"), std::string::npos);
}

TEST(ServeLoopTest, ConcurrentServingMatchesSerialResponses) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> serial_session = TestSession(&g);
  Result<MiningSession> concurrent_session = TestSession(&g);
  ASSERT_TRUE(serial_session.ok());
  ASSERT_TRUE(concurrent_session.ok());

  // The same 6 requests; responses are keyed by id, so after sorting the
  // two transports must agree byte-for-byte except the per-query
  // "seconds" timing, which is rewritten to a fixed token first.
  std::string requests;
  for (int i = 1; i <= 6; ++i) {
    requests += StrCat("{\"id\": ", i, ", \"k\": 3, \"seed\": ", 100 + i,
                       ", \"vmin\": 8, \"seed_count\": 10}\n");
  }
  auto run = [&requests](const MiningSession& session, int32_t inflight) {
    std::istringstream in(requests);
    std::ostringstream out;
    std::ostringstream err;
    ServeOptions options;
    options.max_inflight = inflight;
    options.summary = false;
    ServeStats stats;
    Status status = RunServeLoop(session, in, out, err, options, &stats);
    EXPECT_TRUE(status.ok()) << status;
    EXPECT_EQ(stats.answered, 6);
    std::vector<std::string> lines = Lines(out.str());
    for (std::string& line : lines) {
      size_t begin = line.find("\"seconds\":");
      size_t end = line.find(",\"timed_out\"");
      EXPECT_NE(begin, std::string::npos);
      EXPECT_NE(end, std::string::npos);
      line.replace(begin, end - begin, "\"seconds\":X");
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };

  std::vector<std::string> serial = run(*serial_session, 1);
  std::vector<std::string> concurrent = run(*concurrent_session, 4);
  EXPECT_EQ(serial, concurrent);
}

TEST(ServePrecheckTest, MissingArtifactFailsFast) {
  Status status = PrecheckStage1Artifact("/nonexistent/dir/stage1.sm2");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("cannot read"), std::string::npos);
}

TEST(ServePrecheckTest, UnrecognizedMagicFailsFast) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_precheck_garbage.bin")
          .string();
  std::ofstream(path, std::ios::binary) << "this is not a stage1 artifact";
  Status status = PrecheckStage1Artifact(path);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("not a stage1 artifact"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(ServePrecheckTest, RecognizedMagicsPassTheSniff) {
  // The precheck is a four-byte magic sniff, not full validation: its job
  // is to reject obviously-wrong paths before the expensive graph load.
  // Structural errors still surface at LoadStage1.
  const std::string path =
      (std::filesystem::temp_directory_path() / "serve_precheck_magic.bin")
          .string();
  for (const std::string magic :
       {std::string(kSm1Magic, 4), std::string(kSm2Magic, 4)}) {
    std::ofstream(path, std::ios::binary) << magic << "tail bytes";
    EXPECT_TRUE(PrecheckStage1Artifact(path).ok()) << magic;
  }
  std::filesystem::remove(path);
}

TEST(ServePrecheckTest, CmdServeChecksArtifactBeforeGraph) {
  // Both paths are missing; the error must be about the artifact, proving
  // the precheck runs before the graph is loaded (fail fast, not after
  // seconds of graph parsing and pool construction).
  std::istringstream in("");
  std::ostringstream out, err;
  Status status = CmdServe({"/nonexistent/graph.bin",
                            "/nonexistent/dir/stage1.sm2"},
                           in, out, err);
  ASSERT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("stage1 artifact"), std::string::npos);
}

TEST(ServeLoopTest, RejectsInvalidInflight) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok());
  std::istringstream in("");
  std::ostringstream out, err;
  ServeOptions options;
  options.max_inflight = 0;
  Status status = RunServeLoop(*session, in, out, err, options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace spidermine::cli
