#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/timer.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace spidermine {
namespace {

TEST(RestartsTest, MultipleRunsAccumulateResults) {
  Rng rng(909);
  GraphBuilder builder = GenerateErdosRenyi(150, 2.0, 15, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.1, 15, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 3, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  MineConfig config;
  config.min_support = 2;
  config.k = 10;
  config.dmax = 6;
  config.vmin = 10;
  config.rng_seed = 1;
  // Starve a single run of seeds so restarts visibly help.
  config.seed_count_override = 2;

  config.restarts = 1;
  Result<MineResult> one = SpiderMiner(&g, config).Mine();
  config.restarts = 8;
  Result<MineResult> many = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(many.ok());
  // More runs can only widen the accumulated result set.
  EXPECT_GE(many->patterns.size(), one->patterns.size());
  EXPECT_GE(many->stats.stage2_iterations, one->stats.stage2_iterations);
  // The best pattern of the multi-run result is at least as large.
  int32_t best_one =
      one->patterns.empty() ? 0 : one->patterns.front().NumEdges();
  int32_t best_many =
      many->patterns.empty() ? 0 : many->patterns.front().NumEdges();
  EXPECT_GE(best_many, best_one);
}

TEST(RestartsTest, RestartsRespectTimeBudget) {
  Rng rng(910);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(400, 3.0, 8, &rng).Build()).value();
  MineConfig config;
  config.min_support = 2;
  config.k = 5;
  config.dmax = 6;
  config.vmin = 40;
  config.restarts = 1000;  // absurd; budget must stop it
  config.time_budget_seconds = 2.0;
  WallTimer timer;
  Result<MineResult> result = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_LT(timer.ElapsedSeconds(), 15.0);
  EXPECT_TRUE(result->stats.timed_out);
}

TEST(RestartsTest, SingleRestartMatchesDefault) {
  Rng rng(911);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(100, 2.0, 10, &rng).Build()).value();
  MineConfig config;
  config.min_support = 2;
  config.k = 5;
  config.dmax = 4;
  config.vmin = 10;
  config.rng_seed = 77;
  Result<MineResult> a = SpiderMiner(&g, config).Mine();
  config.restarts = 1;
  Result<MineResult> b = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->patterns.size(), b->patterns.size());
}

}  // namespace
}  // namespace spidermine
