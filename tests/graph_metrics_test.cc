#include "graph/graph_metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "graph/degree_stats.h"
#include "graph/graph_builder.h"

namespace spidermine {
namespace {

LabeledGraph Triangle() {
  GraphBuilder builder;
  builder.AddVertices(3, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  return std::move(builder.Build()).value();
}

LabeledGraph Path(int n) {
  GraphBuilder builder;
  builder.AddVertices(n, 0);
  for (int i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1);
  return std::move(builder.Build()).value();
}

// K4 has 4 triangles; global clustering 1.
LabeledGraph CompleteFour() {
  GraphBuilder builder;
  builder.AddVertices(4, 0);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) builder.AddEdge(i, j);
  }
  return std::move(builder.Build()).value();
}

TEST(GraphMetricsTest, TriangleCountSmallGraphs) {
  EXPECT_EQ(CountTriangles(Triangle()), 1);
  EXPECT_EQ(CountTriangles(Path(5)), 0);
  EXPECT_EQ(CountTriangles(CompleteFour()), 4);
}

TEST(GraphMetricsTest, TriangleCountDisjointTriangles) {
  GraphBuilder builder;
  builder.AddVertices(6, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(3, 5);
  LabeledGraph g = std::move(builder.Build()).value();
  EXPECT_EQ(CountTriangles(g), 2);
}

TEST(GraphMetricsTest, ClusteringCoefficients) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Triangle()), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CompleteFour()), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Path(10)), 0.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Triangle()), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Path(10)), 0.0);
}

TEST(GraphMetricsTest, ClusteringEmptyGraphIsZero) {
  LabeledGraph g = std::move(GraphBuilder().Build()).value();
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(g), 0.0);
  EXPECT_EQ(CountTriangles(g), 0);
}

TEST(GraphMetricsTest, DegreeHistogramViaDegreeStats) {
  // Star with 4 leaves: one vertex of degree 4, four of degree 1.
  GraphBuilder builder;
  builder.AddVertices(5, 0);
  for (int leaf = 1; leaf <= 4; ++leaf) builder.AddEdge(0, leaf);
  LabeledGraph g = std::move(builder.Build()).value();
  DegreeStats stats = ComputeDegreeStats(g);
  ASSERT_EQ(stats.histogram.size(), 5u);
  EXPECT_EQ(stats.histogram[0], 0);
  EXPECT_EQ(stats.histogram[1], 4);
  EXPECT_EQ(stats.histogram[4], 1);
  EXPECT_EQ(stats.max, 4);
}

TEST(GraphMetricsTest, ComponentSizesSortedDescending) {
  GraphBuilder builder;
  builder.AddVertices(7, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 4);
  // 5, 6 isolated
  LabeledGraph g = std::move(builder.Build()).value();
  std::vector<int64_t> sizes = ComponentSizes(g);
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 3);
  EXPECT_EQ(sizes[1], 2);
  EXPECT_EQ(sizes[2], 1);
  EXPECT_EQ(sizes[3], 1);
}

TEST(GraphMetricsTest, SummaryConsistency) {
  Rng rng(7);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(300, 3.0, 5, &rng).Build()).value();
  GraphSummary summary = Summarize(g, &rng, 16);
  EXPECT_EQ(summary.num_vertices, g.NumVertices());
  EXPECT_EQ(summary.num_edges, g.NumEdges());
  EXPECT_EQ(summary.num_labels, g.NumLabels());
  EXPECT_NEAR(summary.avg_degree,
              2.0 * static_cast<double>(g.NumEdges()) /
                  static_cast<double>(g.NumVertices()),
              1e-12);
  EXPECT_GE(summary.max_degree, 1);
  EXPECT_GE(summary.largest_component, 1);
  EXPECT_LE(summary.largest_component, summary.num_vertices);
  EXPECT_GE(summary.effective_diameter, 0.0);
  std::string text = summary.ToString();
  EXPECT_NE(text.find("vertices: 300"), std::string::npos);
  EXPECT_NE(text.find("effective diameter"), std::string::npos);
}

TEST(GraphMetricsTest, SummarySkipsDiameterWhenRequested) {
  Rng rng(8);
  LabeledGraph g = Triangle();
  GraphSummary summary = Summarize(g, &rng, 0);
  EXPECT_LT(summary.effective_diameter, 0.0);
  EXPECT_EQ(summary.ToString().find("effective diameter"), std::string::npos);
}

}  // namespace
}  // namespace spidermine
