#include "spider/ball_miner.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "spider/star_miner.h"

namespace spidermine {
namespace {

/// Two disjoint triangles with labels (0,1,2) each: every r=1 spider with
/// leaf-leaf edges is realizable here but no star miner can see the closing
/// edges.
LabeledGraph TwoLabeledTriangles() {
  GraphBuilder b;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId base = b.AddVertex(0);
    b.AddVertex(1);
    b.AddVertex(2);
    b.AddEdge(base, base + 1);
    b.AddEdge(base + 1, base + 2);
    b.AddEdge(base, base + 2);
  }
  return std::move(b.Build()).value();
}

TEST(BallMinerTest, FindsTriangleSpider) {
  LabeledGraph g = TwoLabeledTriangles();
  BallMinerConfig config;
  config.min_support = 2;
  config.radius = 1;
  Result<BallMineResult> result = MineBallSpiders(g, config);
  ASSERT_TRUE(result.ok());
  bool found_triangle = false;
  for (const Spider& s : result->spiders) {
    if (s.pattern.NumVertices() == 3 && s.pattern.NumEdges() == 3) {
      found_triangle = true;
      EXPECT_EQ(s.support, 2);
    }
  }
  EXPECT_TRUE(found_triangle)
      << "r=1 ball spiders must include the closed triangle";
}

TEST(BallMinerTest, SupersetOfStarMinerAtRadiusOne) {
  LabeledGraph g = TwoLabeledTriangles();
  StarMinerConfig star_config;
  star_config.min_support = 2;
  Result<StarMineResult> stars = MineStarSpiders(g, star_config);
  ASSERT_TRUE(stars.ok());
  BallMinerConfig ball_config;
  ball_config.min_support = 2;
  ball_config.radius = 1;
  Result<BallMineResult> balls = MineBallSpiders(g, ball_config);
  ASSERT_TRUE(balls.ok());
  // Every star spider must appear among ball spiders (same canonical key
  // space: head-tagged canonical form for balls vs star key -- compare via
  // structure: head label + leaf labels and no internal edges).
  for (const Spider& star : stars->Spiders()) {
    bool found = false;
    for (const Spider& ball : balls->spiders) {
      if (ball.pattern.NumVertices() != star.pattern.NumVertices()) continue;
      if (ball.pattern.NumEdges() != star.pattern.NumEdges()) continue;
      if (ball.pattern.Label(0) != star.pattern.Label(0)) continue;
      if (ball.LeafLabels() == star.LeafLabels()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "missing star " << star.pattern.ToString();
  }
  EXPECT_GE(static_cast<int64_t>(balls->spiders.size()),
            stars->store.size());
}

TEST(BallMinerTest, RadiusBoundsSpiderEccentricity) {
  // Path graph: spiders at radius 2 reach two hops.
  GraphBuilder b;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId base = b.AddVertex(0);
    b.AddVertex(1);
    b.AddVertex(2);
    b.AddVertex(3);
    b.AddEdge(base, base + 1);
    b.AddEdge(base + 1, base + 2);
    b.AddEdge(base + 2, base + 3);
  }
  LabeledGraph g = std::move(b.Build()).value();
  BallMinerConfig config;
  config.min_support = 2;
  config.radius = 2;
  Result<BallMineResult> result = MineBallSpiders(g, config);
  ASSERT_TRUE(result.ok());
  int32_t max_seen = 0;
  for (const Spider& s : result->spiders) {
    int32_t ecc = s.pattern.Eccentricity(0);
    EXPECT_LE(ecc, 2);
    max_seen = std::max(max_seen, ecc);
  }
  EXPECT_EQ(max_seen, 2) << "radius-2 spiders should reach two hops";
}

TEST(BallMinerTest, RuntimeGrowsWithRadius) {
  LabeledGraph g = TwoLabeledTriangles();
  BallMinerConfig config;
  config.min_support = 2;
  config.radius = 1;
  Result<BallMineResult> r1 = MineBallSpiders(g, config);
  config.radius = 2;
  Result<BallMineResult> r2 = MineBallSpiders(g, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_GE(r2->spiders.size(), r1->spiders.size());
}

TEST(BallMinerTest, MaxSpidersTruncates) {
  LabeledGraph g = TwoLabeledTriangles();
  BallMinerConfig config;
  config.min_support = 2;
  config.max_spiders = 2;
  Result<BallMineResult> result = MineBallSpiders(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_LE(result->spiders.size(), 3u);
}

TEST(BallMinerTest, InvalidConfigRejected) {
  LabeledGraph g = TwoLabeledTriangles();
  BallMinerConfig config;
  config.min_support = 0;
  EXPECT_FALSE(MineBallSpiders(g, config).ok());
  config.min_support = 2;
  config.radius = 0;
  EXPECT_FALSE(MineBallSpiders(g, config).ok());
}

TEST(BallMinerTest, AnchorsAreSortedDistinct) {
  LabeledGraph g = TwoLabeledTriangles();
  BallMinerConfig config;
  config.min_support = 2;
  Result<BallMineResult> result = MineBallSpiders(g, config);
  ASSERT_TRUE(result.ok());
  for (const Spider& s : result->spiders) {
    EXPECT_TRUE(std::is_sorted(s.anchors.begin(), s.anchors.end()));
    EXPECT_EQ(std::adjacent_find(s.anchors.begin(), s.anchors.end()),
              s.anchors.end());
    EXPECT_EQ(s.support, static_cast<int64_t>(s.anchors.size()));
  }
}

}  // namespace
}  // namespace spidermine
