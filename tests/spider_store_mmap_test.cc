#include "spider/spider_store_mmap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/binary_format.h"
#include "graph/graph_builder.h"
#include "spider/spider_store_io.h"
#include "spider_test_util.h"
#include "spidermine/session.h"

/// The zero-copy `.sm2` Stage I artifact: a mapped session must answer
/// queries byte-identically to the session that mined the store (at any
/// thread count), corrupt/truncated/misaligned files must be rejected
/// through Result<>, tampered bulk sections must be caught by the lazy CRC
/// pass on first touch, and legacy `.sm1` artifacts must keep loading.

namespace spidermine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

LabeledGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(180, 2.0, 12, &rng);
  Pattern planted = RandomConnectedPattern(9, 0.15, 12, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

SessionConfig MinedConfig(int32_t threads = 0) {
  SessionConfig config;
  config.min_support = 3;
  if (threads > 0) config.num_threads = threads;
  return config;
}

TopKQuery SmallQuery(uint64_t seed) {
  TopKQuery query;
  query.k = 5;
  query.dmax = 4;
  query.vmin = 8;
  query.rng_seed = seed;
  query.seed_count_override = 8;
  return query;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A mined session plus its `.sm2` artifact on disk. The graph lives
/// behind a unique_ptr so the session's borrowed pointer survives the
/// fixture being returned by value.
struct Fixture {
  std::unique_ptr<LabeledGraph> graph;
  std::optional<MiningSession> mined;
  std::string path;
};

Fixture MakeFixture(const std::string& name, uint64_t seed) {
  Fixture fx;
  fx.graph = std::make_unique<LabeledGraph>(TestGraph(seed));
  Result<MiningSession> mined =
      MiningSession::Create(fx.graph.get(), MinedConfig());
  EXPECT_TRUE(mined.ok()) << mined.status();
  EXPECT_GT(mined->store().size(), 0);
  fx.mined.emplace(std::move(*mined));
  fx.path = TempPath(name);
  EXPECT_TRUE(fx.mined->SaveStage1(fx.path).ok());
  return fx;
}

TEST(SpiderStoreMmapTest, MappedSessionAnswersByteIdenticalQueries) {
  Fixture fx = MakeFixture("sm2_roundtrip.sm2", 101);
  EXPECT_EQ(binary_format::PeekMagic(fx.path), std::string(kSm2Magic, 4));

  // Byte-identity must hold at every thread count (the serving contract).
  for (int32_t threads : {1, 2, 4}) {
    Result<MiningSession> loaded = MiningSession::LoadStage1(
        fx.graph.get(), MinedConfig(threads), fx.path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->stage1_load_mode(), Stage1LoadMode::kMapped);
    EXPECT_TRUE(loaded->store().is_borrowed());
    EXPECT_TRUE(loaded->index().is_borrowed());
    EXPECT_EQ(loaded->config().min_support, 3);
    EXPECT_EQ(StoreTranscript(loaded->store()),
              StoreTranscript(fx.mined->store()));
    for (uint64_t seed : {5, 6}) {
      Result<QueryResult> a = fx.mined->RunQuery(SmallQuery(seed));
      Result<QueryResult> b = loaded->RunQuery(SmallQuery(seed));
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_FALSE(a->patterns.empty());
      EXPECT_EQ(PatternsTranscript(b->patterns),
                PatternsTranscript(a->patterns))
          << "mapped session diverged at seed=" << seed
          << " threads=" << threads;
    }
  }
  std::filesystem::remove(fx.path);
}

TEST(SpiderStoreMmapTest, WriterIsDeterministic) {
  LabeledGraph g = TestGraph(113);
  Result<MiningSession> session = MiningSession::Create(&g, MinedConfig());
  ASSERT_TRUE(session.ok());
  Stage1Meta meta;
  meta.min_support = 3;
  meta.num_graph_vertices = g.NumVertices();
  meta.graph_hash = g.ContentHash();
  EXPECT_EQ(Stage1ToSm2Bytes(session->store(), session->index(), meta),
            Stage1ToSm2Bytes(session->store(), session->index(), meta));
}

TEST(SpiderStoreMmapTest, TruncatedFilesAreRejectedAtOpen) {
  Fixture fx = MakeFixture("sm2_truncate.sm2", 102);
  const std::string bytes = ReadAll(fx.path);
  ASSERT_GT(bytes.size(), 512u);
  const std::string trunc_path = TempPath("sm2_truncate_cut.sm2");
  // Inside the header, inside the section area, and one byte short.
  for (size_t keep : {size_t{3}, size_t{100}, size_t{400},
                      bytes.size() - 1}) {
    WriteAll(trunc_path, bytes.substr(0, keep));
    Result<std::unique_ptr<MappedStage1>> r = MappedStage1::Open(trunc_path);
    EXPECT_FALSE(r.ok()) << "accepted a " << keep << "-byte prefix";
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  std::filesystem::remove(fx.path);
  std::filesystem::remove(trunc_path);
}

TEST(SpiderStoreMmapTest, HeaderAndMetaCorruptionRejectedAtOpen) {
  Fixture fx = MakeFixture("sm2_header.sm2", 103);
  const std::string bytes = ReadAll(fx.path);
  const std::string bad_path = TempPath("sm2_header_bad.sm2");

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteAll(bad_path, bad_magic);
  Result<std::unique_ptr<MappedStage1>> r1 = MappedStage1::Open(bad_path);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("magic"), std::string::npos);

  std::string bad_version = bytes;
  bad_version[4] = 9;  // version little-endian low byte
  WriteAll(bad_path, bad_version);
  Result<std::unique_ptr<MappedStage1>> r2 = MappedStage1::Open(bad_path);
  ASSERT_FALSE(r2.ok());
  // A version flip lands in either the version check or the header CRC,
  // depending on check order; both must reject.
  EXPECT_EQ(r2.status().code(), StatusCode::kIoError);

  // Flip a section-table byte: the header CRC must catch it.
  std::string bad_table = bytes;
  bad_table[40] = static_cast<char>(bad_table[40] ^ 0x01);
  WriteAll(bad_path, bad_table);
  Result<std::unique_ptr<MappedStage1>> r3 = MappedStage1::Open(bad_path);
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("checksum"), std::string::npos);

  std::filesystem::remove(fx.path);
  std::filesystem::remove(bad_path);
}

TEST(SpiderStoreMmapTest, MisalignedSectionRejectedAtOpen) {
  Fixture fx = MakeFixture("sm2_align.sm2", 104);
  std::string bytes = ReadAll(fx.path);
  // Nudge section 1's offset off the 64-byte grid and re-sign the header,
  // so only the alignment check can reject it.
  constexpr size_t kHeaderBytes = 16 + 9 * 32;
  const size_t entry1_offset_pos = 16 + 1 * 32 + 8;
  uint64_t offset = 0;
  std::memcpy(&offset, bytes.data() + entry1_offset_pos, sizeof(offset));
  offset += 1;
  std::memcpy(bytes.data() + entry1_offset_pos, &offset, sizeof(offset));
  const uint32_t crc =
      Crc32(std::string_view(bytes.data(), kHeaderBytes));
  std::memcpy(bytes.data() + kHeaderBytes, &crc, sizeof(crc));
  const std::string bad_path = TempPath("sm2_align_bad.sm2");
  WriteAll(bad_path, bytes);

  Result<std::unique_ptr<MappedStage1>> r = MappedStage1::Open(bad_path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("misaligned"), std::string::npos);

  std::filesystem::remove(fx.path);
  std::filesystem::remove(bad_path);
}

TEST(SpiderStoreMmapTest, TamperedBulkSectionCaughtOnFirstTouch) {
  Fixture fx = MakeFixture("sm2_tamper.sm2", 105);
  std::string bytes = ReadAll(fx.path);
  // Flip the last byte: it lives in the final (index_ids) section, past
  // everything the eager Open-time validation reads.
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  const std::string bad_path = TempPath("sm2_tamper_bad.sm2");
  WriteAll(bad_path, bytes);

  // Open succeeds: bulk sections are validated lazily.
  Result<std::unique_ptr<MappedStage1>> mapped = MappedStage1::Open(bad_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  Status touched = (*mapped)->EnsureValidated();
  EXPECT_EQ(touched.code(), StatusCode::kIoError);
  EXPECT_NE(touched.message().find("checksum"), std::string::npos);
  // The verdict is cached, not recomputed.
  EXPECT_EQ((*mapped)->EnsureValidated().code(), StatusCode::kIoError);

  // Through the session: load succeeds, the first query fails.
  Result<MiningSession> loaded =
      MiningSession::LoadStage1(fx.graph.get(), SessionConfig{}, bad_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  Result<QueryResult> q = loaded->RunQuery(SmallQuery(5));
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kIoError);

  std::filesystem::remove(fx.path);
  std::filesystem::remove(bad_path);
}

TEST(SpiderStoreMmapTest, GraphMismatchRejected) {
  Fixture fx = MakeFixture("sm2_mismatch.sm2", 106);
  LabeledGraph other = TestGraph(107);  // same size, different content
  ASSERT_EQ(other.NumVertices(), fx.graph->NumVertices());
  Result<MiningSession> loaded =
      MiningSession::LoadStage1(&other, SessionConfig{}, fx.path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("hash mismatch"),
            std::string::npos);
  std::filesystem::remove(fx.path);
}

TEST(SpiderStoreMmapTest, LegacySm1ArtifactStillLoads) {
  LabeledGraph g = TestGraph(108);
  Result<MiningSession> mined = MiningSession::Create(&g, MinedConfig());
  ASSERT_TRUE(mined.ok()) << mined.status();

  // Write the legacy format directly (what a pre-`.sm2` release saved).
  Stage1Meta meta;
  meta.min_support = 3;
  meta.spider_radius = mined->config().spider_radius;
  meta.max_star_leaves = mined->config().max_star_leaves;
  meta.max_spiders = mined->config().max_spiders;
  meta.num_graph_vertices = g.NumVertices();
  meta.graph_hash = g.ContentHash();
  const std::string path = TempPath("sm2_legacy.sm1");
  ASSERT_TRUE(SaveSpiderStoreBinary(mined->store(), meta, path).ok());
  EXPECT_EQ(binary_format::PeekMagic(path), std::string(kSm1Magic, 4));

  Result<MiningSession> loaded =
      MiningSession::LoadStage1(&g, SessionConfig{}, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->stage1_load_mode(), Stage1LoadMode::kCopied);
  EXPECT_FALSE(loaded->store().is_borrowed());
  EXPECT_EQ(StoreTranscript(loaded->store()),
            StoreTranscript(mined->store()));
  Result<QueryResult> a = mined->RunQuery(SmallQuery(5));
  Result<QueryResult> b = loaded->RunQuery(SmallQuery(5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(PatternsTranscript(b->patterns), PatternsTranscript(a->patterns));
  std::filesystem::remove(path);
}

TEST(SpiderStoreMmapTest, MissingFileRejected) {
  Result<std::unique_ptr<MappedStage1>> r =
      MappedStage1::Open("/nonexistent/dir/stage1.sm2");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace spidermine
