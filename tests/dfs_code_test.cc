#include "pattern/dfs_code.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/pattern_factory.h"
#include "pattern/vf2.h"

namespace spidermine {
namespace {

/// Relabels pattern vertices by the permutation perm (new id of v =
/// perm[v]); the result is isomorphic by construction.
Pattern Permuted(const Pattern& p, const std::vector<VertexId>& perm) {
  Pattern q;
  std::vector<LabelId> labels(perm.size());
  for (VertexId v = 0; v < p.NumVertices(); ++v) {
    labels[perm[v]] = p.Label(v);
  }
  for (LabelId l : labels) q.AddVertex(l);
  for (const auto& [u, v] : p.Edges()) q.AddEdge(perm[u], perm[v]);
  return q;
}

TEST(DfsCodeTest, SingleVertex) {
  Pattern p(5);
  DfsCode code = MinimumDfsCode(p);
  EXPECT_EQ(code.root_label, 5);
  EXPECT_TRUE(code.edges.empty());
  EXPECT_EQ(CanonicalString(p), "r5");
}

TEST(DfsCodeTest, SingleEdgeOrientation) {
  Pattern p;
  p.AddVertex(3);
  p.AddVertex(1);
  p.AddEdge(0, 1);
  DfsCode code = MinimumDfsCode(p);
  ASSERT_EQ(code.edges.size(), 1u);
  // Canonical orientation starts at the smaller label.
  EXPECT_EQ(code.edges[0].from_label, 1);
  EXPECT_EQ(code.edges[0].to_label, 3);
}

TEST(DfsCodeTest, DisconnectedFlagged) {
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(1);
  DfsCode code = MinimumDfsCode(p);
  EXPECT_EQ(code.root_label, -2);
}

TEST(DfsCodeTest, EmptyPattern) {
  Pattern p;
  EXPECT_EQ(MinimumDfsCode(p).root_label, -1);
}

TEST(DfsCodeTest, TriangleVsPathDiffer) {
  Pattern triangle;
  for (int i = 0; i < 3; ++i) triangle.AddVertex(0);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  Pattern path;
  for (int i = 0; i < 3; ++i) path.AddVertex(0);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  EXPECT_NE(CanonicalString(triangle), CanonicalString(path));
}

TEST(DfsCodeTest, LabelsDistinguish) {
  Pattern a;
  a.AddVertex(0);
  a.AddVertex(1);
  a.AddEdge(0, 1);
  Pattern b;
  b.AddVertex(0);
  b.AddVertex(2);
  b.AddEdge(0, 1);
  EXPECT_NE(CanonicalString(a), CanonicalString(b));
}

TEST(DfsCodeTest, PermutationInvarianceSmallFixed) {
  // A labeled 4-cycle with a chord.
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(1);
  p.AddVertex(0);
  p.AddVertex(1);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  p.AddEdge(2, 3);
  p.AddEdge(3, 0);
  p.AddEdge(0, 2);
  std::string canonical = CanonicalString(p);
  std::vector<VertexId> perm{0, 1, 2, 3};
  std::sort(perm.begin(), perm.end());
  do {
    EXPECT_EQ(CanonicalString(Permuted(p, perm)), canonical);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(DfsCodeTest, RoundTripThroughPatternFromDfsCode) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    Pattern p = RandomConnectedPattern(
        static_cast<int32_t>(rng.UniformInt(2, 10)), 0.3, 4, &rng);
    DfsCode code = MinimumDfsCode(p);
    Pattern rebuilt = PatternFromDfsCode(code);
    EXPECT_TRUE(ArePatternsIsomorphic(p, rebuilt)) << p.ToString();
    EXPECT_EQ(CanonicalString(rebuilt), DfsCodeToString(code));
  }
}

TEST(DfsCodeTest, CompareCodesPrefixOrder) {
  Pattern p;
  for (int i = 0; i < 3; ++i) p.AddVertex(0);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  DfsCode longer = MinimumDfsCode(p);
  DfsCode shorter = longer;
  shorter.edges.pop_back();
  EXPECT_LT(CompareDfsCodes(shorter, longer), 0);
  EXPECT_GT(CompareDfsCodes(longer, shorter), 0);
  EXPECT_EQ(CompareDfsCodes(longer, longer), 0);
}

TEST(DfsCodeTest, BackwardEdgePrecedesForward) {
  DfsEdge backward{2, 0, 5, 5};
  DfsEdge forward{2, 3, 5, 5};
  EXPECT_LT(CompareDfsEdges(backward, forward), 0);
  EXPECT_GT(CompareDfsEdges(forward, backward), 0);
}

TEST(DfsCodeTest, DeeperForwardSourcePrecedes) {
  DfsEdge from_deep{2, 3, 0, 0};
  DfsEdge from_shallow{1, 3, 0, 0};
  EXPECT_LT(CompareDfsEdges(from_deep, from_shallow), 0);
}

class DfsCodePermutationProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DfsCodePermutationProperty, CanonicalFormIsPermutationInvariant) {
  Rng rng(GetParam());
  Pattern p = RandomConnectedPattern(
      static_cast<int32_t>(rng.UniformInt(3, 12)), 0.4,
      static_cast<LabelId>(rng.UniformInt(1, 5)), &rng);
  std::string canonical = CanonicalString(p);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<VertexId> perm(p.NumVertices());
    for (VertexId v = 0; v < p.NumVertices(); ++v) perm[v] = v;
    rng.Shuffle(&perm);
    EXPECT_EQ(CanonicalString(Permuted(p, perm)), canonical)
        << "pattern: " << p.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DfsCodePermutationProperty,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace spidermine
