#include "spidermine/closed_filter.h"

#include <gtest/gtest.h>

namespace spidermine {
namespace {

MinedPattern Make(const Pattern& p, int64_t support) {
  MinedPattern mp;
  mp.pattern = p;
  mp.support = support;
  return mp;
}

Pattern PathOf(std::vector<LabelId> labels) {
  Pattern p;
  for (LabelId l : labels) p.AddVertex(l);
  for (size_t i = 0; i + 1 < labels.size(); ++i) {
    p.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return p;
}

TEST(IsSubPatternTest, PathInLongerPath) {
  EXPECT_TRUE(IsSubPatternOf(PathOf({0, 1}), PathOf({0, 1, 2})));
  EXPECT_TRUE(IsSubPatternOf(PathOf({1, 2}), PathOf({0, 1, 2})));
  EXPECT_FALSE(IsSubPatternOf(PathOf({0, 2}), PathOf({0, 1, 2})));
  EXPECT_FALSE(IsSubPatternOf(PathOf({0, 1, 2}), PathOf({0, 1})));
}

TEST(IsSubPatternTest, EmptyAndEqual) {
  Pattern empty;
  EXPECT_TRUE(IsSubPatternOf(empty, PathOf({0})));
  EXPECT_TRUE(IsSubPatternOf(PathOf({0, 1}), PathOf({0, 1})));
}

TEST(ClosedFilterTest, DropsEqualSupportSubPattern) {
  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(PathOf({0, 1, 2}), 5));
  patterns.push_back(Make(PathOf({0, 1}), 5));  // non-closed: same support
  std::vector<MinedPattern> closed = FilterToClosed(std::move(patterns));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].pattern.NumVertices(), 3);
}

TEST(ClosedFilterTest, KeepsHigherSupportSubPattern) {
  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(PathOf({0, 1, 2}), 5));
  patterns.push_back(Make(PathOf({0, 1}), 9));  // closed: more support
  std::vector<MinedPattern> closed = FilterToClosed(std::move(patterns));
  EXPECT_EQ(closed.size(), 2u);
}

TEST(ClosedFilterTest, UnrelatedPatternsUntouched) {
  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(PathOf({0, 1}), 3));
  patterns.push_back(Make(PathOf({2, 3}), 3));
  EXPECT_EQ(FilterToClosed(std::move(patterns)).size(), 2u);
}

TEST(MaximalFilterTest, DropsAnySubPattern) {
  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(PathOf({0, 1, 2}), 5));
  patterns.push_back(Make(PathOf({0, 1}), 9));  // maximality ignores support
  patterns.push_back(Make(PathOf({7, 8}), 2));
  std::vector<MinedPattern> maximal = FilterToMaximal(std::move(patterns));
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].pattern.NumVertices(), 3);
  EXPECT_EQ(maximal[1].pattern.Label(0), 7);
}

TEST(MaximalFilterTest, EmptyInput) {
  EXPECT_TRUE(FilterToMaximal({}).empty());
  EXPECT_TRUE(FilterToClosed({}).empty());
}

}  // namespace
}  // namespace spidermine
