#include <gtest/gtest.h>

#include "graph/binary_io.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "pattern/dfs_code.h"
#include "pattern/vf2.h"
#include "spider/ball_miner.h"
#include "spider/star_miner.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "spidermine/oracle.h"

/// \file edge_label_test.cc
/// The paper's Sec. 3 extension: "Our method can also be applied to graphs
/// with edge labels." These tests cover the edge-labeled data model, the
/// label-aware matching/canonical layers, and end-to-end SpiderMine runs on
/// edge-labeled networks. Baselines are vertex-label-only by design (the
/// paper's evaluation graphs carry no edge labels); DESIGN.md documents it.

namespace spidermine {
namespace {

TEST(EdgeLabelTest, GraphStoresAndReportsEdgeLabels) {
  GraphBuilder builder;
  builder.AddVertices(3, 0);
  builder.AddEdge(0, 1, 5);
  builder.AddEdge(1, 2);  // unlabeled
  LabeledGraph g = std::move(builder.Build()).value();
  EXPECT_TRUE(g.HasEdgeLabels());
  EXPECT_EQ(g.EdgeLabel(0, 1), 5);
  EXPECT_EQ(g.EdgeLabel(1, 0), 5);
  EXPECT_EQ(g.EdgeLabel(1, 2), 0);
  EXPECT_EQ(g.EdgeLabel(0, 2), -1);  // absent edge
}

TEST(EdgeLabelTest, UnlabeledGraphReportsNoEdgeLabels) {
  GraphBuilder builder;
  builder.AddVertices(2, 0);
  builder.AddEdge(0, 1);
  LabeledGraph g = std::move(builder.Build()).value();
  EXPECT_FALSE(g.HasEdgeLabels());
  EXPECT_EQ(g.EdgeLabel(0, 1), 0);
}

TEST(EdgeLabelTest, PatternStoresEdgeLabels) {
  Pattern p(0);
  VertexId b = p.AddVertex(1);
  VertexId c = p.AddVertex(2);
  ASSERT_TRUE(p.AddEdge(0, b, 7));
  ASSERT_TRUE(p.AddEdge(b, c));
  EXPECT_TRUE(p.HasEdgeLabels());
  EXPECT_EQ(p.EdgeLabel(0, b), 7);
  EXPECT_EQ(p.EdgeLabel(b, 0), 7);
  EXPECT_EQ(p.EdgeLabel(b, c), 0);
  auto edges = p.LabeledEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].label, 7);
  EXPECT_EQ(edges[1].label, 0);
}

TEST(EdgeLabelTest, InducedSubgraphKeepsEdgeLabels) {
  Pattern p(0);
  VertexId b = p.AddVertex(1);
  VertexId c = p.AddVertex(2);
  p.AddEdge(0, b, 3);
  p.AddEdge(b, c, 4);
  std::vector<VertexId> keep{0, b};
  Pattern sub = p.InducedSubgraph(keep);
  EXPECT_EQ(sub.EdgeLabel(0, 1), 3);
}

TEST(EdgeLabelTest, Vf2DistinguishesEdgeLabels) {
  // Graph: two edges with different labels between same-labeled vertices.
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(1);
  builder.AddVertex(1);
  builder.AddEdge(0, 1, 10);
  builder.AddEdge(0, 2, 20);
  LabeledGraph g = std::move(builder.Build()).value();

  Pattern want10(0);
  want10.AddVertex(1);
  want10.AddEdge(0, 1, 10);
  Pattern want20(0);
  want20.AddVertex(1);
  want20.AddEdge(0, 1, 20);
  Pattern want30(0);
  want30.AddVertex(1);
  want30.AddEdge(0, 1, 30);

  EXPECT_EQ(FindEmbeddings(want10, g).size(), 1u);
  EXPECT_EQ(FindEmbeddings(want20, g).size(), 1u);
  EXPECT_TRUE(FindEmbeddings(want30, g).empty());
  // An unlabeled pattern edge (label 0) does not match labeled graph edges.
  Pattern want0(0);
  want0.AddVertex(1);
  want0.AddEdge(0, 1);
  EXPECT_TRUE(FindEmbeddings(want0, g).empty());
}

TEST(EdgeLabelTest, IsomorphismRespectsEdgeLabels) {
  Pattern a(0);
  a.AddVertex(1);
  a.AddEdge(0, 1, 3);
  Pattern b(1);
  b.AddVertex(0);
  b.AddEdge(0, 1, 3);
  Pattern c(0);
  c.AddVertex(1);
  c.AddEdge(0, 1, 4);
  Pattern d(0);
  d.AddVertex(1);
  d.AddEdge(0, 1);

  EXPECT_TRUE(ArePatternsIsomorphic(a, b));
  EXPECT_FALSE(ArePatternsIsomorphic(a, c));
  EXPECT_FALSE(ArePatternsIsomorphic(a, d));
}

TEST(EdgeLabelTest, CanonicalStringSeparatesEdgeLabels) {
  Pattern a(0);
  a.AddVertex(0);
  a.AddEdge(0, 1, 1);
  Pattern b(0);
  b.AddVertex(0);
  b.AddEdge(0, 1, 2);
  EXPECT_NE(CanonicalString(a), CanonicalString(b));

  // Permutation invariance with edge labels: triangle with distinct edge
  // labels, built in two vertex orders.
  Pattern t1(0);
  {
    VertexId x = t1.AddVertex(0);
    VertexId y = t1.AddVertex(0);
    t1.AddEdge(0, x, 1);
    t1.AddEdge(x, y, 2);
    t1.AddEdge(0, y, 3);
  }
  Pattern t2(0);
  {
    VertexId x = t2.AddVertex(0);
    VertexId y = t2.AddVertex(0);
    t2.AddEdge(0, x, 3);   // relabeled rotation of t1
    t2.AddEdge(x, y, 2);
    t2.AddEdge(0, y, 1);
  }
  EXPECT_EQ(CanonicalString(t1), CanonicalString(t2));
  EXPECT_TRUE(ArePatternsIsomorphic(t1, t2));
}

TEST(EdgeLabelTest, DfsCodeRoundTripKeepsEdgeLabels) {
  Pattern p(0);
  VertexId b = p.AddVertex(1);
  VertexId c = p.AddVertex(2);
  p.AddEdge(0, b, 9);
  p.AddEdge(b, c, 8);
  p.AddEdge(0, c, 7);
  DfsCode code = MinimumDfsCode(p);
  Pattern back = PatternFromDfsCode(code);
  EXPECT_TRUE(ArePatternsIsomorphic(p, back));
  EXPECT_TRUE(back.HasEdgeLabels());
}

TEST(EdgeLabelTest, TextAndBinaryIoRoundTripEdgeLabels) {
  GraphBuilder builder;
  builder.AddVertices(4, 1);
  builder.AddEdge(0, 1, 2);
  builder.AddEdge(1, 2, 3);
  builder.AddEdge(2, 3);
  LabeledGraph g = std::move(builder.Build()).value();

  Result<LabeledGraph> via_text = ParseGraphText(GraphToText(g));
  ASSERT_TRUE(via_text.ok()) << via_text.status();
  EXPECT_EQ(via_text->EdgeLabel(0, 1), 2);
  EXPECT_EQ(via_text->EdgeLabel(1, 2), 3);
  EXPECT_EQ(via_text->EdgeLabel(2, 3), 0);

  Result<LabeledGraph> via_binary = GraphFromBinary(GraphToBinary(g));
  ASSERT_TRUE(via_binary.ok()) << via_binary.status();
  EXPECT_EQ(via_binary->EdgeLabel(0, 1), 2);
  EXPECT_EQ(via_binary->EdgeLabel(1, 2), 3);
  EXPECT_EQ(via_binary->EdgeLabel(2, 3), 0);
}

TEST(EdgeLabelTest, StarMinerSeparatesLeavesByEdgeLabel) {
  // Three hubs of label 0; each has one neighbor of label 1 via edge label
  // 1 and one via edge label 2. The edge-labeled stars must be distinct
  // spiders with support 3, and the combined 2-leaf star must exist too.
  GraphBuilder builder;
  for (int i = 0; i < 3; ++i) {
    VertexId hub = builder.AddVertex(0);
    VertexId l1 = builder.AddVertex(1);
    VertexId l2 = builder.AddVertex(1);
    builder.AddEdge(hub, l1, 1);
    builder.AddEdge(hub, l2, 2);
  }
  LabeledGraph g = std::move(builder.Build()).value();

  StarMinerConfig config;
  config.min_support = 3;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());

  int single_leaf_stars_at_hub = 0;
  bool combined = false;
  for (const Spider& s : result->Spiders()) {
    if (s.pattern.Label(0) != 0) continue;
    if (s.pattern.NumVertices() == 2) ++single_leaf_stars_at_hub;
    if (s.pattern.NumVertices() == 3) {
      auto keys = s.LeafKeys();
      combined = keys.size() == 2 && keys[0].first == 1 &&
                 keys[1].first == 2;
    }
  }
  // Edge labels 1 and 2 each give a distinct single-leaf star.
  EXPECT_EQ(single_leaf_stars_at_hub, 2);
  EXPECT_TRUE(combined);
}

TEST(EdgeLabelTest, BuilderRejectsNegativeEdgeLabel) {
  GraphBuilder builder;
  builder.AddVertices(2, 0);
  builder.AddEdge(0, 1, -3);
  Result<LabeledGraph> result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeLabelTest, DuplicateEdgeKeepsFirstLabel) {
  GraphBuilder builder;
  builder.AddVertices(2, 0);
  builder.AddEdge(0, 1, 5);
  builder.AddEdge(1, 0, 7);  // duplicate (reversed); first label wins
  LabeledGraph g = std::move(builder.Build()).value();
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.EdgeLabel(0, 1), 5);
}

TEST(EdgeLabelTest, TextFormatOmitsLabelColumnWhenUnlabeled) {
  GraphBuilder builder;
  builder.AddVertices(2, 0);
  builder.AddEdge(0, 1);
  LabeledGraph g = std::move(builder.Build()).value();
  std::string text = GraphToText(g);
  EXPECT_NE(text.find("e 0 1\n"), std::string::npos);

  GraphBuilder labeled;
  labeled.AddVertices(2, 0);
  labeled.AddEdge(0, 1, 4);
  LabeledGraph g2 = std::move(labeled.Build()).value();
  EXPECT_NE(GraphToText(g2).find("e 0 1 4\n"), std::string::npos);
}

TEST(EdgeLabelTest, OracleRespectsEdgeLabels) {
  // Two triangle kinds with identical VERTEX labels: two copies wired with
  // edge labels (1,2,3) and two wired with (9,9,9). At sigma = 2 each kind
  // is frequent on its own; a mix never is. The oracle's engine (complete
  // miner) must keep the kinds apart.
  GraphBuilder builder;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId a = builder.AddVertex(0);
    VertexId b = builder.AddVertex(1);
    VertexId c = builder.AddVertex(2);
    builder.AddEdge(a, b, 1);
    builder.AddEdge(b, c, 2);
    builder.AddEdge(a, c, 3);
  }
  for (int copy = 0; copy < 2; ++copy) {
    VertexId a = builder.AddVertex(0);
    VertexId b = builder.AddVertex(1);
    VertexId c = builder.AddVertex(2);
    builder.AddEdge(a, b, 9);
    builder.AddEdge(b, c, 9);
    builder.AddEdge(a, c, 9);
  }
  LabeledGraph g = std::move(builder.Build()).value();

  OracleConfig config;
  config.min_support = 2;
  config.k = 4;
  config.dmax = 2;
  Result<OracleResult> result = ExactTopKLargest(g, config);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->exact);
  ASSERT_GE(result->top_k.size(), 2u);
  // Both full triangles (one per edge-label kind) rank at the top with
  // support exactly 2; a label-blind engine would report one 3-edge
  // triangle with support 4 instead.
  EXPECT_EQ(result->top_k[0].pattern.NumEdges(), 3);
  EXPECT_EQ(result->top_k[1].pattern.NumEdges(), 3);
  EXPECT_EQ(result->top_k[0].support, 2);
  EXPECT_EQ(result->top_k[1].support, 2);
  EXPECT_FALSE(
      ArePatternsIsomorphic(result->top_k[0].pattern,
                            result->top_k[1].pattern));
}

TEST(EdgeLabelTest, BallMinerSeparatesEdgeLabeledSpiders) {
  // Three copies of each of two 2-paths u-m-w that differ only in their
  // edge labels; radius-2 spiders headed at the endpoints must separate.
  GraphBuilder builder;
  for (int copy = 0; copy < 3; ++copy) {
    VertexId u = builder.AddVertex(0);
    VertexId m = builder.AddVertex(1);
    VertexId w = builder.AddVertex(2);
    builder.AddEdge(u, m, 1);
    builder.AddEdge(m, w, 1);
  }
  for (int copy = 0; copy < 3; ++copy) {
    VertexId u = builder.AddVertex(0);
    VertexId m = builder.AddVertex(1);
    VertexId w = builder.AddVertex(2);
    builder.AddEdge(u, m, 2);
    builder.AddEdge(m, w, 2);
  }
  LabeledGraph g = std::move(builder.Build()).value();

  BallMinerConfig config;
  config.min_support = 3;
  config.radius = 2;
  Result<BallMineResult> result = MineBallSpiders(g, config);
  ASSERT_TRUE(result.ok());
  // Full 2-path spiders headed at label-0 vertices: one per edge-label
  // kind, each with 3 anchors. A label-blind miner would merge them into
  // one spider with 6 anchors.
  int full_paths_at_head0 = 0;
  for (const Spider& s : result->spiders) {
    if (s.pattern.NumVertices() == 3 && s.pattern.Label(0) == 0) {
      ++full_paths_at_head0;
      EXPECT_EQ(s.support, 3);
      EXPECT_TRUE(s.pattern.HasEdgeLabels());
    }
  }
  EXPECT_EQ(full_paths_at_head0, 2);
}

TEST(EdgeLabelTest, SpiderMineMinesEdgeLabeledNetworkEndToEnd) {
  // Plant 3 copies of an edge-labeled triangle-with-tail; background is a
  // few same-vertex-label vertices wired with a DIFFERENT edge label, so
  // recovery must distinguish edge labels to report support 3.
  GraphBuilder builder;
  for (int i = 0; i < 3; ++i) {
    VertexId a = builder.AddVertex(0);
    VertexId b = builder.AddVertex(1);
    VertexId c = builder.AddVertex(2);
    VertexId d = builder.AddVertex(3);
    builder.AddEdge(a, b, 1);
    builder.AddEdge(b, c, 2);
    builder.AddEdge(a, c, 3);
    builder.AddEdge(c, d, 1);
  }
  // Decoys: same vertex labels, different edge labels.
  for (int i = 0; i < 3; ++i) {
    VertexId a = builder.AddVertex(0);
    VertexId b = builder.AddVertex(1);
    VertexId c = builder.AddVertex(2);
    builder.AddEdge(a, b, 9);
    builder.AddEdge(b, c, 9);
    builder.AddEdge(a, c, 9);
  }
  LabeledGraph g = std::move(builder.Build()).value();

  MineConfig config;
  config.min_support = 3;
  config.k = 3;
  config.dmax = 4;
  config.vmin = 4;
  config.rng_seed = 2;
  config.restarts = 4;
  Result<MineResult> result = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->patterns.empty());
  const MinedPattern& top = result->patterns.front();
  EXPECT_EQ(top.NumVertices(), 4);
  EXPECT_EQ(top.NumEdges(), 4);
  EXPECT_EQ(top.support, 3);
  EXPECT_TRUE(top.pattern.HasEdgeLabels());

  // The planted labeled structure, for an exact isomorphism check.
  Pattern planted(0);
  VertexId b = planted.AddVertex(1);
  VertexId c = planted.AddVertex(2);
  VertexId d = planted.AddVertex(3);
  planted.AddEdge(0, b, 1);
  planted.AddEdge(b, c, 2);
  planted.AddEdge(0, c, 3);
  planted.AddEdge(c, d, 1);
  EXPECT_TRUE(ArePatternsIsomorphic(top.pattern, planted));
}

}  // namespace
}  // namespace spidermine
