#include "pattern/pattern_io.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/pattern_factory.h"
#include "pattern/vf2.h"

namespace spidermine {
namespace {

Pattern Triangle() {
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(1);
  p.AddVertex(2);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  p.AddEdge(0, 2);
  return p;
}

TEST(PatternIoTest, SinglePatternRoundTrip) {
  Pattern p = Triangle();
  Result<std::vector<Pattern>> parsed = ParsePatternsText(PatternToText(p));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0], p);
}

TEST(PatternIoTest, MultiPatternRoundTripWithSupports) {
  std::vector<Pattern> patterns{Triangle(), Pattern(7)};
  std::vector<int64_t> supports{4, 2};
  std::string text = PatternsToText(patterns, &supports);
  EXPECT_NE(text.find("# support = 4"), std::string::npos);
  Result<std::vector<Pattern>> parsed = ParsePatternsText(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], patterns[0]);
  EXPECT_EQ((*parsed)[1], patterns[1]);
}

TEST(PatternIoTest, FileRoundTrip) {
  std::vector<Pattern> patterns{Triangle()};
  std::string path = testing::TempDir() + "/sm_pattern_io_test.txt";
  ASSERT_TRUE(SavePatternsText(patterns, path).ok());
  Result<std::vector<Pattern>> loaded = LoadPatternsText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0], patterns[0]);
}

TEST(PatternIoTest, RandomPatternsRoundTripIsomorphically) {
  Rng rng(3);
  std::vector<Pattern> patterns;
  for (int i = 0; i < 10; ++i) {
    patterns.push_back(RandomConnectedPattern(
        static_cast<int32_t>(rng.UniformInt(1, 12)), 0.3, 5, &rng));
  }
  Result<std::vector<Pattern>> parsed =
      ParsePatternsText(PatternsToText(patterns));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_EQ((*parsed)[i], patterns[i]);
  }
}

TEST(PatternIoTest, RejectsVertexBeforeHeader) {
  EXPECT_FALSE(ParsePatternsText("v 0 1\n").ok());
}

TEST(PatternIoTest, RejectsEdgeBeforeHeader) {
  EXPECT_FALSE(ParsePatternsText("e 0 1\n").ok());
}

TEST(PatternIoTest, RejectsTruncatedPattern) {
  EXPECT_FALSE(ParsePatternsText("p 2 1\nv 0 5\n").ok());
  EXPECT_FALSE(ParsePatternsText("p 2 1\nv 0 5\nv 1 5\n").ok());
  // A truncated pattern followed by a new header is also caught.
  EXPECT_FALSE(ParsePatternsText("p 2 1\nv 0 5\np 1 0\nv 0 1\n").ok());
}

TEST(PatternIoTest, RejectsBadRecords) {
  EXPECT_FALSE(ParsePatternsText("p 1 0\nv 3 5\n").ok());  // non-dense id
  EXPECT_FALSE(ParsePatternsText("p 2 1\nv 0 1\nv 1 1\ne 0 9\n").ok());
  EXPECT_FALSE(ParsePatternsText("x nonsense\n").ok());
}

TEST(PatternIoTest, CommentsAndBlanksIgnored) {
  Result<std::vector<Pattern>> parsed = ParsePatternsText(
      "# exported by spidermine\n\np 1 0\n# the vertex:\nv 0 9\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].Label(0), 9);
}

TEST(PatternIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadPatternsText("/nonexistent/file").status().code(),
            StatusCode::kIoError);
}

TEST(PatternIoTest, EmptyTextYieldsNoPatterns) {
  Result<std::vector<Pattern>> parsed = ParsePatternsText("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace spidermine
