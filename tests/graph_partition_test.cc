#include "graph/graph_partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

/// Radius-aware vertex-range partitioning: plans must be deterministic and
/// structurally valid, every owned vertex must see its EXACT r-hop ball
/// inside its partition (the property Stage I exactness rests on), the
/// `.smgp` codec must round-trip bit-for-bit and reject corruption, and
/// the streaming one-pass scan must agree with the materialized graph.

namespace spidermine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

LabeledGraph ErGraph(uint64_t seed, int64_t n = 300) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(n, 3.0, 8, &rng);
  return std::move(builder.Build()).value();
}

LabeledGraph BaGraph(uint64_t seed, int64_t n = 300) {
  Rng rng(seed);
  GraphBuilder builder = GenerateBarabasiAlbert(n, 2, 8, &rng);
  return std::move(builder.Build()).value();
}

/// Original ids within \p radius hops of \p source in the full graph.
std::set<VertexId> FullGraphBall(const LabeledGraph& graph, VertexId source,
                                 int32_t radius) {
  std::set<VertexId> ball{source};
  std::deque<std::pair<VertexId, int32_t>> frontier{{source, 0}};
  while (!frontier.empty()) {
    auto [v, dist] = frontier.front();
    frontier.pop_front();
    if (dist == radius) continue;
    for (VertexId u : graph.Neighbors(v)) {
      if (ball.insert(u).second) frontier.push_back({u, dist + 1});
    }
  }
  return ball;
}

/// Hop distance from the owned range to every local vertex of \p part.
std::vector<int32_t> DistanceFromOwned(const GraphPartition& part) {
  std::vector<int32_t> dist(
      static_cast<size_t>(part.graph.NumVertices()), -1);
  std::deque<VertexId> frontier;
  for (VertexId v = 0; v < part.num_owned(); ++v) {
    dist[static_cast<size_t>(v)] = 0;
    frontier.push_back(v);
  }
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    for (VertexId u : part.graph.Neighbors(v)) {
      if (dist[static_cast<size_t>(u)] < 0) {
        dist[static_cast<size_t>(u)] = dist[static_cast<size_t>(v)] + 1;
        frontier.push_back(u);
      }
    }
  }
  return dist;
}

std::set<VertexId> MappedNeighbors(const GraphPartition& part,
                                   VertexId local) {
  std::set<VertexId> out;
  for (VertexId u : part.graph.Neighbors(local)) {
    out.insert(part.ToOriginal(u));
  }
  return out;
}

std::set<VertexId> GraphNeighbors(const LabeledGraph& graph, VertexId v) {
  std::set<VertexId> out;
  for (VertexId u : graph.Neighbors(v)) out.insert(u);
  return out;
}

TEST(PartitionPlanTest, DeterministicBoundariesTileTheIdSpace) {
  const LabeledGraph graph = BaGraph(11);
  for (int32_t parts : {1, 2, 5, 7}) {
    Result<PartitionPlan> a = MakePartitionPlan(graph, parts, 1);
    Result<PartitionPlan> b = MakePartitionPlan(graph, parts, 1);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->boundaries, b->boundaries);
    EXPECT_EQ(a->num_partitions, parts);
    ASSERT_EQ(a->boundaries.size(), static_cast<size_t>(parts) + 1);
    EXPECT_EQ(a->boundaries.front(), 0);
    EXPECT_EQ(a->boundaries.back(), graph.NumVertices());
    for (size_t i = 1; i < a->boundaries.size(); ++i) {
      EXPECT_LT(a->boundaries[i - 1], a->boundaries[i]);
    }
    EXPECT_TRUE(a->Validate(graph.NumVertices()).ok());
  }
}

TEST(PartitionPlanTest, DegreeBalancingShiftsBoundariesOnSkewedGraphs) {
  // BA graphs concentrate degree on early vertices: the degree-balanced
  // first partition must own fewer vertices than the uniform one.
  const LabeledGraph graph = BaGraph(13, 600);
  Result<PartitionPlan> by_degree = MakePartitionPlan(graph, 3, 1, true);
  Result<PartitionPlan> uniform = MakePartitionPlan(graph, 3, 1, false);
  ASSERT_TRUE(by_degree.ok()) << by_degree.status();
  ASSERT_TRUE(uniform.ok()) << uniform.status();
  EXPECT_LT(by_degree->boundaries[1], uniform->boundaries[1]);
}

TEST(PartitionPlanTest, RejectsInvalidCounts) {
  const LabeledGraph graph = ErGraph(17, 50);
  EXPECT_FALSE(MakePartitionPlan(graph, 0, 1).ok());
  EXPECT_FALSE(MakePartitionPlan(graph, -2, 1).ok());
  EXPECT_FALSE(MakePartitionPlan(graph, 51, 1).ok());  // more parts than n
  EXPECT_FALSE(MakePartitionPlan(graph, 2, 0).ok());   // radius < 1
  EXPECT_TRUE(MakePartitionPlan(graph, 50, 1).ok());   // one vertex each

  PartitionPlan plan;
  plan.num_partitions = 2;
  plan.radius = 1;
  plan.boundaries = {0, 10, 9};  // not increasing
  EXPECT_FALSE(plan.Validate(9).ok());
  plan.boundaries = {0, 5, 9};
  EXPECT_TRUE(plan.Validate(9).ok());
  EXPECT_FALSE(plan.Validate(10).ok());  // does not reach n
}

TEST(GraphPartitionTest, OwnedVerticesSeeTheirExactBall) {
  for (const LabeledGraph& graph : {ErGraph(23), BaGraph(29)}) {
    for (int32_t parts : {2, 5}) {
      for (int32_t radius : {1, 2}) {
        Result<PartitionPlan> plan =
            MakePartitionPlan(graph, parts, radius);
        ASSERT_TRUE(plan.ok()) << plan.status();
        std::vector<bool> owned_somewhere(
            static_cast<size_t>(graph.NumVertices()), false);
        for (int32_t p = 0; p < parts; ++p) {
          Result<GraphPartition> part =
              BuildGraphPartition(graph, *plan, p);
          ASSERT_TRUE(part.ok()) << part.status();
          ASSERT_EQ(part->radius, radius);

          // Owned locals are [0, num_owned) and map to owned_begin + i;
          // every local vertex keeps its original label.
          for (VertexId v = 0; v < part->num_owned(); ++v) {
            ASSERT_EQ(part->ToOriginal(v), part->owned_begin + v);
            ASSERT_FALSE(owned_somewhere[static_cast<size_t>(
                part->ToOriginal(v))]);
            owned_somewhere[static_cast<size_t>(part->ToOriginal(v))] =
                true;
          }
          for (VertexId v = 0; v < part->graph.NumVertices(); ++v) {
            ASSERT_EQ(part->graph.Label(v),
                      graph.Label(part->ToOriginal(v)));
          }

          // The local vertex set is exactly the union of owned r-balls...
          std::set<VertexId> expected;
          for (VertexId orig = static_cast<VertexId>(part->owned_begin);
               orig < part->owned_end; ++orig) {
            std::set<VertexId> ball = FullGraphBall(graph, orig, radius);
            expected.insert(ball.begin(), ball.end());
          }
          std::set<VertexId> actual;
          for (VertexId v = 0; v < part->graph.NumVertices(); ++v) {
            actual.insert(part->ToOriginal(v));
          }
          ASSERT_EQ(actual, expected);

          // ...and every vertex strictly inside the halo (distance
          // < radius from the owned range) has its COMPLETE adjacency,
          // so owned vertices see exact r-balls, not clipped ones.
          const std::vector<int32_t> dist = DistanceFromOwned(*part);
          for (VertexId v = 0; v < part->graph.NumVertices(); ++v) {
            ASSERT_GE(dist[static_cast<size_t>(v)], 0);
            ASSERT_LE(dist[static_cast<size_t>(v)], radius);
            if (dist[static_cast<size_t>(v)] < radius) {
              ASSERT_EQ(MappedNeighbors(*part, v),
                        GraphNeighbors(graph, part->ToOriginal(v)))
                  << "clipped adjacency at distance "
                  << dist[static_cast<size_t>(v)];
            }
          }
        }
        EXPECT_TRUE(std::all_of(owned_somewhere.begin(),
                                owned_somewhere.end(),
                                [](bool b) { return b; }));
      }
    }
  }
}

TEST(GraphPartitionTest, SmgpRoundTripIsExactAndDeterministic) {
  const LabeledGraph graph = BaGraph(31);
  Result<PartitionPlan> plan = MakePartitionPlan(graph, 3, 2);
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<GraphPartition> part = BuildGraphPartition(graph, *plan, 1);
  ASSERT_TRUE(part.ok()) << part.status();

  const std::string bytes = GraphPartitionToBytes(*part);
  EXPECT_EQ(bytes, GraphPartitionToBytes(*part));  // deterministic encode
  EXPECT_EQ(bytes.substr(0, 4), std::string(kSmgpMagic, 4));

  Result<GraphPartition> loaded = GraphPartitionFromBytes(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->partition_index, part->partition_index);
  EXPECT_EQ(loaded->num_partitions, part->num_partitions);
  EXPECT_EQ(loaded->radius, part->radius);
  EXPECT_EQ(loaded->owned_begin, part->owned_begin);
  EXPECT_EQ(loaded->owned_end, part->owned_end);
  EXPECT_EQ(loaded->parent_hash, part->parent_hash);
  EXPECT_EQ(loaded->parent_num_vertices, part->parent_num_vertices);
  EXPECT_EQ(loaded->parent_num_edges, part->parent_num_edges);
  EXPECT_EQ(loaded->local_to_orig, part->local_to_orig);
  EXPECT_EQ(loaded->graph.ContentHash(), part->graph.ContentHash());
  EXPECT_EQ(loaded->ContentHash(), part->ContentHash());

  const std::string path = TempPath("graph_partition_roundtrip.smgp");
  ASSERT_TRUE(SaveGraphPartition(*part, path).ok());
  Result<GraphPartition> from_file = LoadGraphPartition(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  EXPECT_EQ(from_file->ContentHash(), part->ContentHash());
  std::filesystem::remove(path);
}

TEST(GraphPartitionTest, SmgpRejectsCorruptionAndTruncation) {
  const LabeledGraph graph = ErGraph(37, 120);
  Result<PartitionPlan> plan = MakePartitionPlan(graph, 2, 1);
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<GraphPartition> part = BuildGraphPartition(graph, *plan, 0);
  ASSERT_TRUE(part.ok()) << part.status();
  const std::string bytes = GraphPartitionToBytes(*part);

  // Any single corrupted payload byte must be caught (envelope CRC).
  for (size_t offset : {bytes.size() / 3, bytes.size() / 2,
                        bytes.size() - 9}) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    Result<GraphPartition> r = GraphPartitionFromBytes(corrupt);
    EXPECT_FALSE(r.ok()) << "corruption at byte " << offset;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  // Truncation at any prefix must be caught.
  for (size_t keep : {size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(GraphPartitionFromBytes(bytes.substr(0, keep)).ok());
  }
  // Wrong magic must be rejected before anything else is believed.
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(GraphPartitionFromBytes(wrong_magic).ok());
}

TEST(StreamingScanTest, MatchesTheMaterializedGraph) {
  const LabeledGraph graph = BaGraph(41, 400);
  const std::string path = TempPath("streaming_scan.lg");
  ASSERT_TRUE(SaveGraphText(graph, path).ok());

  Result<StreamingGraphScan> scan = ScanGraphTextStreaming(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->num_vertices, graph.NumVertices());
  EXPECT_EQ(scan->num_edges, graph.NumEdges());
  ASSERT_EQ(scan->degrees.size(),
            static_cast<size_t>(graph.NumVertices()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(scan->degrees[static_cast<size_t>(v)],
              static_cast<int64_t>(graph.Neighbors(v).size()));
  }
  int64_t histogram_total = 0;
  for (int64_t count : scan->label_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, graph.NumVertices());

  // A plan cut from the streaming degrees equals the in-memory plan: the
  // out-of-core path partitions identically without loading the graph.
  Result<PartitionPlan> from_scan =
      MakePartitionPlanFromDegrees(scan->degrees, 4, 1);
  Result<PartitionPlan> from_graph = MakePartitionPlan(graph, 4, 1);
  ASSERT_TRUE(from_scan.ok()) << from_scan.status();
  ASSERT_TRUE(from_graph.ok()) << from_graph.status();
  EXPECT_EQ(from_scan->boundaries, from_graph->boundaries);
  std::filesystem::remove(path);
}

TEST(StreamingScanTest, EnforcesTheRecordGrammar) {
  auto scan_of = [](const std::string& text) {
    std::istringstream in(text);
    return ScanGraphTextStream(in);
  };
  // Forward-referenced endpoint: rejected like the materializing loader.
  EXPECT_FALSE(scan_of("v 0 1\ne 0 5\n").ok());
  // Out-of-order vertex ids: rejected.
  EXPECT_FALSE(scan_of("v 1 0\n").ok());
  // Negative label: rejected.
  EXPECT_FALSE(scan_of("v 0 -2\n").ok());
  // Unknown record kind: rejected.
  EXPECT_FALSE(scan_of("v 0 1\nx 0 0\n").ok());
  // Self-loops are skipped (GraphBuilder parity), comments ignored.
  Result<StreamingGraphScan> ok =
      scan_of("# c\nv 0 1\nv 1 2\ne 0 0\ne 0 1\n");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->num_edges, 1);
  EXPECT_EQ(ok->degrees, (std::vector<int64_t>{1, 1}));
}

}  // namespace
}  // namespace spidermine
