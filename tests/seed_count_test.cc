#include "spidermine/seed_count.h"

#include <gtest/gtest.h>

namespace spidermine {
namespace {

TEST(SeedCountTest, PaperWorkedExample) {
  // Paper Sec. 4.1: epsilon = 0.1, K = 10, Vmin = |V|/10 "we get M = 85".
  // Evaluating the bound exactly: at M = 85 it yields 0.894 < 0.9; the
  // smallest satisfying M is 86 (the paper rounded). EXPERIMENTS.md
  // discusses the one-off discrepancy.
  Result<int64_t> m = ComputeSeedCount(/*num_vertices=*/10000,
                                       /*vmin=*/1000, /*k=*/10,
                                       /*epsilon=*/0.1);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, 86);
  EXPECT_LT(SeedSuccessLowerBound(10000, 1000, 10, 85), 0.9);
  EXPECT_GE(SeedSuccessLowerBound(10000, 1000, 10, 86), 0.9);
}

TEST(SeedCountTest, BoundIsIndependentOfScaleAtFixedRatio) {
  // Only the ratio Vmin/|V| matters.
  Result<int64_t> small = ComputeSeedCount(100, 10, 10, 0.1);
  Result<int64_t> large = ComputeSeedCount(1000000, 100000, 10, 0.1);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(*small, *large);
}

TEST(SeedCountTest, MoreStringentEpsilonNeedsMoreSeeds) {
  Result<int64_t> loose = ComputeSeedCount(10000, 1000, 10, 0.2);
  Result<int64_t> tight = ComputeSeedCount(10000, 1000, 10, 0.01);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GT(*tight, *loose);
}

TEST(SeedCountTest, MoreTargetsNeedMoreSeeds) {
  Result<int64_t> k1 = ComputeSeedCount(10000, 1000, 1, 0.1);
  Result<int64_t> k50 = ComputeSeedCount(10000, 1000, 50, 0.1);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k50.ok());
  EXPECT_GT(*k50, *k1);
}

TEST(SeedCountTest, SmallerPatternsNeedMoreSeeds) {
  Result<int64_t> big_patterns = ComputeSeedCount(10000, 2000, 10, 0.1);
  Result<int64_t> small_patterns = ComputeSeedCount(10000, 200, 10, 0.1);
  ASSERT_TRUE(big_patterns.ok());
  ASSERT_TRUE(small_patterns.ok());
  EXPECT_GT(*small_patterns, *big_patterns);
}

TEST(SeedCountTest, SuccessBoundMonotoneBeyondSolution) {
  int64_t m = *ComputeSeedCount(10000, 1000, 10, 0.1);
  double at_m = SeedSuccessLowerBound(10000, 1000, 10, m);
  double at_2m = SeedSuccessLowerBound(10000, 1000, 10, 2 * m);
  EXPECT_GE(at_2m, at_m);
  EXPECT_GE(at_m, 0.9);
}

TEST(SeedCountTest, BoundClampedToZeroWhenVacuous) {
  // Tiny M with tiny hit probability: (M+1)(1-p)^M >= 1 => bound is 0.
  EXPECT_EQ(SeedSuccessLowerBound(1000000, 1, 10, 2), 0.0);
}

TEST(SeedCountTest, WholeGraphPatternNeedsFewSeeds) {
  // Vmin == |V|: every spider is inside the pattern; M = 2 suffices for
  // any epsilon because pfail = 0.
  Result<int64_t> m = ComputeSeedCount(100, 100, 10, 0.001);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, 2);
}

TEST(SeedCountTest, InvalidArgumentsRejected) {
  EXPECT_FALSE(ComputeSeedCount(0, 1, 1, 0.1).ok());
  EXPECT_FALSE(ComputeSeedCount(100, 0, 1, 0.1).ok());
  EXPECT_FALSE(ComputeSeedCount(100, 101, 1, 0.1).ok());
  EXPECT_FALSE(ComputeSeedCount(100, 10, 0, 0.1).ok());
  EXPECT_FALSE(ComputeSeedCount(100, 10, 1, 0.0).ok());
  EXPECT_FALSE(ComputeSeedCount(100, 10, 1, 1.0).ok());
}

TEST(SeedCountTest, UnreachableTargetIsResourceExhausted) {
  // Vmin/|V| astronomically small: no reasonable M satisfies the bound.
  Result<int64_t> m =
      ComputeSeedCount(100000000, 1, 10, 0.1, /*max_m=*/1000);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
}

class SeedCountMonotonicity : public ::testing::TestWithParam<int32_t> {};

TEST_P(SeedCountMonotonicity, MGrowsWithK) {
  int32_t k = GetParam();
  Result<int64_t> m_k = ComputeSeedCount(10000, 1000, k, 0.1);
  Result<int64_t> m_k1 = ComputeSeedCount(10000, 1000, k + 1, 0.1);
  ASSERT_TRUE(m_k.ok());
  ASSERT_TRUE(m_k1.ok());
  EXPECT_LE(*m_k, *m_k1);
}

INSTANTIATE_TEST_SUITE_P(KSweep, SeedCountMonotonicity,
                         ::testing::Values(1, 2, 5, 10, 20, 50));

}  // namespace
}  // namespace spidermine
