#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/binary_io.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "pattern/vf2.h"
#include "pattern/spider_set.h"
#include "spidermine/closure.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "spidermine/oracle.h"
#include "spidermine/variants.h"

/// \file invariants_test.cc
/// Parameterized property sweeps over random instances for the post-growth
/// modules (closure, variants, oracle) and the binary codec. Each TEST_P
/// instance derives a fresh scenario from its seed; properties must hold on
/// every draw.

namespace spidermine {
namespace {

// ---------------------------------------------------------------------------
// Closure invariants.
// ---------------------------------------------------------------------------

class ClosureInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosureInvariants, ClosurePreservesMiningInvariants) {
  Rng rng(GetParam());
  GraphBuilder builder = GenerateErdosRenyi(150, 2.0, 10, &rng);
  Pattern planted = RandomPatternWithDiameter(9, 4, 10, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 3, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  // Start from the planted pattern minus one edge that keeps it connected
  // (drop a cycle edge if any; otherwise skip the mutation).
  Pattern open = planted;
  std::vector<Embedding> embeddings = FindEmbeddings(open, g);
  ASSERT_FALSE(embeddings.empty());
  const int32_t diameter_before = open.Diameter();

  int64_t support = 0;
  const int32_t added =
      CloseInternalEdges(g, &open, &embeddings,
                         SupportMeasureKind::kGreedyMisVertex,
                         /*min_support=*/3, &support);

  // 1. The pattern stays connected and its diameter never grows.
  EXPECT_TRUE(open.IsConnected());
  EXPECT_LE(open.Diameter(), diameter_before);
  // 2. Every surviving embedding realizes every pattern edge.
  for (const Embedding& e : embeddings) {
    for (const auto& [u, v] : open.Edges()) {
      EXPECT_TRUE(g.HasEdge(e[u], e[v]))
          << "edge " << u << "-" << v << " not realized";
    }
  }
  // 3. If an edge was added, the support reported matches a recomputation.
  if (added > 0) {
    EXPECT_EQ(support,
              ComputeSupport(SupportMeasureKind::kGreedyMisVertex, open,
                             embeddings));
    EXPECT_GE(support, 3);
  }
  // 4. Idempotence: a second pass adds nothing.
  Pattern again = open;
  std::vector<Embedding> embeddings2 = embeddings;
  EXPECT_EQ(CloseInternalEdges(g, &again, &embeddings2,
                               SupportMeasureKind::kGreedyMisVertex, 3),
            0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureInvariants,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

// ---------------------------------------------------------------------------
// Binary / text codec round trips.
// ---------------------------------------------------------------------------

struct CodecParam {
  int64_t vertices;
  double avg_degree;
  LabelId labels;
  uint64_t seed;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecParam> {};

TEST_P(CodecRoundTrip, BinaryAndTextPreserveTheGraph) {
  const CodecParam& p = GetParam();
  Rng rng(p.seed);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(p.vertices, p.avg_degree, p.labels, &rng)
                    .Build())
          .value();

  Result<LabeledGraph> via_binary = GraphFromBinary(GraphToBinary(g));
  ASSERT_TRUE(via_binary.ok()) << via_binary.status();
  Result<LabeledGraph> via_text = ParseGraphText(GraphToText(g));
  ASSERT_TRUE(via_text.ok()) << via_text.status();

  for (const LabeledGraph* other :
       {&via_binary.value(), &via_text.value()}) {
    ASSERT_EQ(g.NumVertices(), other->NumVertices());
    ASSERT_EQ(g.NumEdges(), other->NumEdges());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(g.Label(v), other->Label(v));
      auto a = g.Neighbors(v);
      auto b = other->Neighbors(v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
  }

  // Determinism: encoding is byte-stable.
  EXPECT_EQ(GraphToBinary(g), GraphToBinary(g));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecRoundTrip,
    ::testing::Values(CodecParam{1, 0.0, 1, 1}, CodecParam{50, 1.0, 3, 2},
                      CodecParam{200, 3.0, 8, 3}, CodecParam{500, 5.0, 2, 4},
                      CodecParam{100, 0.5, 30, 5}));

// ---------------------------------------------------------------------------
// Variant / maximality invariants over real miner output.
// ---------------------------------------------------------------------------

class ResultPostProcessing : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::vector<MinedPattern> MineSomething(uint64_t seed) {
    Rng rng(seed);
    GraphBuilder builder = GenerateErdosRenyi(150, 1.8, 8, &rng);
    Pattern planted = RandomPatternWithDiameter(8, 4, 8, &rng);
    PatternInjector injector(&builder);
    EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
    graph_ = std::move(builder.Build()).value();
    MineConfig config;
    config.min_support = 2;
    config.k = 12;
    config.dmax = 4;
    config.vmin = 8;
    config.rng_seed = seed;
    Result<MineResult> result = SpiderMiner(&graph_, config).Mine();
    EXPECT_TRUE(result.ok());
    return result.ok() ? std::move(result->patterns)
                       : std::vector<MinedPattern>{};
  }

  LabeledGraph graph_;
};

TEST_P(ResultPostProcessing, FilterMaximalYieldsAnAntichain) {
  std::vector<MinedPattern> patterns = MineSomething(GetParam());
  const size_t before = patterns.size();
  std::vector<MinedPattern> maximal = FilterMaximal(std::move(patterns));
  ASSERT_LE(maximal.size(), before);
  for (size_t i = 0; i < maximal.size(); ++i) {
    for (size_t j = 0; j < maximal.size(); ++j) {
      if (i == j) continue;
      if (maximal[j].NumEdges() >= maximal[i].NumEdges()) {
        EXPECT_FALSE(IsSubPattern(maximal[i].pattern, maximal[j].pattern))
            << "kept pattern " << i << " is contained in kept pattern " << j;
      }
    }
  }
}

TEST_P(ResultPostProcessing, GroupVariantsPartitionsTheResults) {
  std::vector<MinedPattern> patterns = MineSomething(GetParam());
  std::vector<VariantGroup> groups = GroupVariants(patterns);
  std::vector<int> seen(patterns.size(), 0);
  for (const VariantGroup& group : groups) {
    ++seen[group.core_index];
    for (size_t v : group.variant_indices) {
      ++seen[v];
      // Every variant contains its core.
      EXPECT_TRUE(IsSubPattern(patterns[group.core_index].pattern,
                               patterns[v].pattern));
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "pattern " << i << " in " << seen[i] << " groups";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResultPostProcessing,
                         ::testing::Values(101u, 202u, 303u, 404u));

// ---------------------------------------------------------------------------
// Oracle self-consistency.
// ---------------------------------------------------------------------------

class OracleInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleInvariants, OracleOutputIsFrequentBoundedAndSorted) {
  Rng rng(GetParam());
  GraphBuilder builder = GenerateErdosRenyi(80, 1.5, 6, &rng);
  Pattern planted = RandomPatternWithDiameter(6, 3, 6, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 2, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  OracleConfig config;
  config.min_support = 2;
  config.k = 8;
  config.dmax = 3;
  Result<OracleResult> result = ExactTopKLargest(g, config);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->exact);

  int32_t previous_edges = INT32_MAX;
  for (const OraclePattern& op : result->top_k) {
    // Diameter bound and reported diameter agree with the pattern.
    EXPECT_EQ(op.diameter, op.pattern.Diameter());
    EXPECT_LE(op.diameter, config.dmax);
    // Sorted by size descending.
    EXPECT_LE(op.pattern.NumEdges(), previous_edges);
    previous_edges = op.pattern.NumEdges();
    // Reported support is reproducible from fresh embeddings.
    std::vector<Embedding> embeddings = FindEmbeddings(op.pattern, g);
    DedupEmbeddingsByImage(&embeddings);
    EXPECT_EQ(op.support,
              ComputeSupport(SupportMeasureKind::kGreedyMisVertex, op.pattern,
                             embeddings));
    EXPECT_GE(op.support, config.min_support);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleInvariants,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u));

// ---------------------------------------------------------------------------
// Incremental spider-set maintenance (paper Sec. 4.2.2 update rule).
// ---------------------------------------------------------------------------

class SpiderSetUpdateInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpiderSetUpdateInvariants, UpdatedEqualsFullRecompute) {
  // Simulate star growth: repeatedly attach fresh leaves at a random
  // vertex, maintaining the spider-set incrementally, and check it against
  // a from-scratch recomputation at every step and for both radii.
  Rng rng(GetParam());
  for (int32_t r : {1, 2}) {
    Pattern p(static_cast<LabelId>(rng.UniformInt(0, 4)));
    SpiderSetRepr repr = SpiderSetRepr::Compute(p, r);
    for (int step = 0; step < 12; ++step) {
      const VertexId site =
          static_cast<VertexId>(rng.UniformInt(0, p.NumVertices() - 1));
      const int32_t base_n = p.NumVertices();
      const int32_t leaves = static_cast<int32_t>(rng.UniformInt(1, 3));
      for (int l = 0; l < leaves; ++l) {
        VertexId nv = p.AddVertex(static_cast<LabelId>(rng.UniformInt(0, 4)));
        p.AddEdge(site, nv,
                  static_cast<EdgeLabelId>(rng.UniformInt(0, 2)));
      }
      std::vector<VertexId> changed;
      std::vector<int32_t> dist = p.BfsDistances(site, r);
      for (VertexId x = 0; x < base_n; ++x) {
        if (dist[x] >= 0) changed.push_back(x);
      }
      repr = repr.Updated(p, r, changed);
      SpiderSetRepr full = SpiderSetRepr::Compute(p, r);
      ASSERT_TRUE(repr == full)
          << "radius " << r << " step " << step << ": incremental update "
          << "diverged from full recomputation";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpiderSetUpdateInvariants,
                         ::testing::Values(3u, 13u, 23u, 33u, 43u, 53u));

}  // namespace
}  // namespace spidermine
