#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/dfs_code.h"
#include "pattern/spider_set.h"
#include "pattern/vf2.h"
#include "spider/ball_miner.h"
#include "spider/star_miner.h"
#include "support/support_measure.h"

namespace spidermine {
namespace {

/// Property sweep over random seeds: each TEST_P instance draws a fresh
/// random scenario and asserts an algebraic invariant of the library.
class RandomScenario : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam() * 1000003ULL + 17};
};

// ---- Invariant 1: canonical code equality <=> isomorphism. ----
TEST_P(RandomScenario, CanonicalCodeAgreesWithVf2Isomorphism) {
  Pattern a = RandomConnectedPattern(
      static_cast<int32_t>(rng_.UniformInt(2, 9)), 0.35,
      static_cast<LabelId>(rng_.UniformInt(1, 3)), &rng_);
  Pattern b = RandomConnectedPattern(
      static_cast<int32_t>(rng_.UniformInt(2, 9)), 0.35,
      static_cast<LabelId>(rng_.UniformInt(1, 3)), &rng_);
  bool same_code = CanonicalString(a) == CanonicalString(b);
  bool isomorphic = ArePatternsIsomorphic(a, b);
  EXPECT_EQ(same_code, isomorphic)
      << "a=" << a.ToString() << " b=" << b.ToString();
}

// ---- Invariant 2: Theorem 2 -- isomorphic patterns share spider-sets,
// and unequal spider-sets certify non-isomorphism. ----
TEST_P(RandomScenario, SpiderSetFilterIsSoundForPruning) {
  Pattern a = RandomConnectedPattern(
      static_cast<int32_t>(rng_.UniformInt(3, 10)), 0.3,
      static_cast<LabelId>(rng_.UniformInt(1, 4)), &rng_);
  Pattern b = RandomConnectedPattern(
      static_cast<int32_t>(rng_.UniformInt(3, 10)), 0.3,
      static_cast<LabelId>(rng_.UniformInt(1, 4)), &rng_);
  for (int32_t r = 1; r <= 2; ++r) {
    bool sets_equal =
        SpiderSetRepr::Compute(a, r) == SpiderSetRepr::Compute(b, r);
    if (!sets_equal) {
      EXPECT_FALSE(ArePatternsIsomorphic(a, b))
          << "spider-set pruning must never discard isomorphic pairs (r="
          << r << ")";
    }
  }
}

// ---- Invariant 3: every embedding VF2 returns is label- and
// edge-preserving and injective. ----
TEST_P(RandomScenario, EmbeddingsAreValid) {
  LabeledGraph g = std::move(
      GenerateErdosRenyi(60, 3.0, static_cast<LabelId>(rng_.UniformInt(2, 5)),
                         &rng_)
          .Build())
          .value();
  Pattern p = RandomConnectedPattern(
      static_cast<int32_t>(rng_.UniformInt(2, 4)), 0.2, g.NumLabels(), &rng_);
  Vf2Options options;
  options.max_embeddings = 200;
  for (const Embedding& e : FindEmbeddings(p, g, options)) {
    std::vector<VertexId> image = SortedImage(e);
    EXPECT_EQ(std::adjacent_find(image.begin(), image.end()), image.end());
    for (VertexId pv = 0; pv < p.NumVertices(); ++pv) {
      EXPECT_EQ(g.Label(e[pv]), p.Label(pv));
    }
    for (const auto& [u, v] : p.Edges()) {
      EXPECT_TRUE(g.HasEdge(e[u], e[v]));
    }
  }
}

// ---- Invariant 4: star-miner anchors really anchor embeddings, and
// support is anti-monotone along the star lattice. ----
TEST_P(RandomScenario, StarSupportIsAntiMonotone) {
  LabeledGraph g = std::move(
      GenerateErdosRenyi(80, 4.0, 4, &rng_).Build())
          .value();
  StarMinerConfig config;
  config.min_support = 2;
  config.max_leaves = 4;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  const std::vector<Spider> spiders = result->Spiders();
  // Index stars by (head, leaves) for sub-star lookup.
  for (const Spider& s : spiders) {
    std::vector<LabelId> leaves = s.LeafLabels();
    if (leaves.empty()) continue;
    // Dropping the last leaf gives a sub-star that must also be frequent
    // with support >= the super-star's.
    std::vector<LabelId> sub(leaves.begin(), leaves.end() - 1);
    bool found = false;
    for (const Spider& t : spiders) {
      if (t.pattern.Label(0) == s.pattern.Label(0) &&
          t.LeafLabels() == sub) {
        EXPECT_GE(t.support, s.support);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "sub-star missing from mined set";
  }
}

// ---- Invariant 5: anchors of mined stars admit anchored embeddings. ----
TEST_P(RandomScenario, StarAnchorsAdmitEmbeddings) {
  LabeledGraph g = std::move(
      GenerateErdosRenyi(50, 3.0, 3, &rng_).Build())
          .value();
  StarMinerConfig config;
  config.min_support = 2;
  config.max_leaves = 3;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  int32_t checked = 0;
  for (const Spider& s : result->Spiders()) {
    if (s.pattern.NumVertices() < 2 || checked >= 5) continue;
    ++checked;
    for (size_t i = 0; i < std::min<size_t>(s.anchors.size(), 3); ++i) {
      Vf2Options options;
      options.anchor_pattern_vertex = 0;
      options.anchor_graph_vertex = s.anchors[i];
      options.max_embeddings = 1;
      EXPECT_FALSE(FindEmbeddings(s.pattern, g, options).empty())
          << "anchor " << s.anchors[i] << " of " << s.pattern.ToString();
    }
  }
}

// ---- Invariant 6: ball spiders are r-bounded from the head. ----
TEST_P(RandomScenario, BallSpidersAreRBounded) {
  LabeledGraph g = std::move(
      GenerateErdosRenyi(40, 2.5, 3, &rng_).Build())
          .value();
  for (int32_t r = 1; r <= 2; ++r) {
    BallMinerConfig config;
    config.min_support = 2;
    config.radius = r;
    config.max_spiders = 400;
    Result<BallMineResult> result = MineBallSpiders(g, config);
    ASSERT_TRUE(result.ok());
    for (const Spider& s : result->spiders) {
      EXPECT_TRUE(s.pattern.IsRBoundedFrom(0, r))
          << "r=" << r << " spider " << s.pattern.ToString();
    }
  }
}

// ---- Invariant 7: greedy MIS supports never exceed embedding count and
// respect the conflict hierarchy. ----
TEST_P(RandomScenario, SupportMeasureHierarchy) {
  LabeledGraph g = std::move(
      GenerateErdosRenyi(60, 3.0, 3, &rng_).Build())
          .value();
  Pattern p = RandomConnectedPattern(3, 0.0, 3, &rng_);
  Vf2Options options;
  options.max_embeddings = 300;
  std::vector<Embedding> embeddings = FindEmbeddings(p, g, options);
  DedupEmbeddingsByImage(&embeddings);
  int64_t count =
      ComputeSupport(SupportMeasureKind::kEmbeddingCount, p, embeddings);
  int64_t mis_v =
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings);
  int64_t mis_e =
      ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, embeddings);
  int64_t mni = ComputeSupport(SupportMeasureKind::kMinImage, p, embeddings);
  EXPECT_LE(mis_v, count);
  EXPECT_LE(mis_e, count);
  EXPECT_LE(mni, count);
  if (count > 0) {
    EXPECT_GE(mis_v, 1);
    EXPECT_GE(mni, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenario,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace spidermine
