#include "pattern/spider_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/pattern_factory.h"
#include "pattern/vf2.h"

namespace spidermine {
namespace {

Pattern Permuted(const Pattern& p, const std::vector<VertexId>& perm) {
  Pattern q;
  std::vector<LabelId> labels(perm.size());
  for (VertexId v = 0; v < p.NumVertices(); ++v) labels[perm[v]] = p.Label(v);
  for (LabelId l : labels) q.AddVertex(l);
  for (const auto& [u, v] : p.Edges()) q.AddEdge(perm[u], perm[v]);
  return q;
}

TEST(NeighborhoodSpiderTest, RadiusOneInducesClosedNeighborhood) {
  // Path 0-1-2 plus leaf 3 on vertex 1.
  Pattern p;
  for (int i = 0; i < 4; ++i) p.AddVertex(i);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  p.AddEdge(1, 3);
  Pattern spider = NeighborhoodSpider(p, 1, 1);
  EXPECT_EQ(spider.NumVertices(), 4);
  EXPECT_EQ(spider.NumEdges(), 3);
  // Head is tagged: label becomes 2*l+1, others 2*l.
  EXPECT_EQ(spider.Label(0), 2 * 1 + 1);
}

TEST(NeighborhoodSpiderTest, LeafSpiderIsSmall) {
  Pattern p;
  for (int i = 0; i < 3; ++i) p.AddVertex(0);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  Pattern spider = NeighborhoodSpider(p, 0, 1);
  EXPECT_EQ(spider.NumVertices(), 2);
  EXPECT_EQ(spider.NumEdges(), 1);
}

TEST(NeighborhoodSpiderTest, LargerRadiusCoversMore) {
  Pattern p;
  for (int i = 0; i < 5; ++i) p.AddVertex(0);
  for (int i = 0; i + 1 < 5; ++i) p.AddEdge(i, i + 1);
  EXPECT_EQ(NeighborhoodSpider(p, 0, 1).NumVertices(), 2);
  EXPECT_EQ(NeighborhoodSpider(p, 0, 2).NumVertices(), 3);
  EXPECT_EQ(NeighborhoodSpider(p, 0, 4).NumVertices(), 5);
}

TEST(SpiderSetTest, SizeEqualsVertexCount) {
  Rng rng(1);
  Pattern p = RandomConnectedPattern(8, 0.3, 3, &rng);
  SpiderSetRepr repr = SpiderSetRepr::Compute(p, 1);
  EXPECT_EQ(repr.size(), 8u);
}

TEST(SpiderSetTest, Theorem2IsomorphicImpliesEqualSpiderSets) {
  // Paper Theorem 2, checked over random patterns and permutations.
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    Pattern p = RandomConnectedPattern(
        static_cast<int32_t>(rng.UniformInt(3, 14)), 0.4,
        static_cast<LabelId>(rng.UniformInt(1, 4)), &rng);
    std::vector<VertexId> perm(p.NumVertices());
    for (VertexId v = 0; v < p.NumVertices(); ++v) perm[v] = v;
    rng.Shuffle(&perm);
    Pattern q = Permuted(p, perm);
    for (int32_t r = 1; r <= 2; ++r) {
      EXPECT_EQ(SpiderSetRepr::Compute(p, r), SpiderSetRepr::Compute(q, r))
          << "r=" << r << " pattern=" << p.ToString();
    }
  }
}

TEST(SpiderSetTest, DifferentLabelMultisetsDiffer) {
  Pattern a;
  a.AddVertex(0);
  a.AddVertex(1);
  a.AddEdge(0, 1);
  Pattern b;
  b.AddVertex(0);
  b.AddVertex(2);
  b.AddEdge(0, 1);
  EXPECT_FALSE(SpiderSetRepr::Compute(a, 1) == SpiderSetRepr::Compute(b, 1));
}

TEST(SpiderSetTest, PathVsStarDiffer) {
  Pattern path;
  for (int i = 0; i < 4; ++i) path.AddVertex(0);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  Pattern star;
  for (int i = 0; i < 4; ++i) star.AddVertex(0);
  star.AddEdge(0, 1);
  star.AddEdge(0, 2);
  star.AddEdge(0, 3);
  EXPECT_FALSE(SpiderSetRepr::Compute(path, 1) ==
               SpiderSetRepr::Compute(star, 1));
}

/// The paper's Figure 3(II) phenomenon: two non-isomorphic graphs whose
/// r=1 spider-sets coincide but whose r=2 spider-sets differ. The classic
/// example pair: a 6-cycle versus two 3-cycles... but two triangles are
/// disconnected; instead use C6 vs 2x C3 joined appropriately -- here we
/// use the standard counterexample C6 vs C3+C3 made connected: a hexagon
/// versus a "bowtie-like" 6-vertex graph where every vertex still sees two
/// same-label neighbors. With all labels equal, every radius-1 spider of
/// both graphs is a path of 3 vertices when degree is 2; C6 and the prism
/// difference shows up only at radius 2.
TEST(SpiderSetTest, RadiusOneCollisionResolvedAtRadiusTwo) {
  // Hexagon C6 (all labels 0).
  Pattern hexagon;
  for (int i = 0; i < 6; ++i) hexagon.AddVertex(0);
  for (int i = 0; i < 6; ++i) hexagon.AddEdge(i, (i + 1) % 6);
  // Two triangles sharing no vertex, bridged... must stay degree-2
  // everywhere to fool r=1, so use two disjoint triangles as one PATTERN is
  // disconnected -- instead compare C6 against C3 duplicated via a
  // 6-vertex graph that is two triangles (disconnected). The spider-set of
  // a disconnected pattern is still well defined per vertex.
  Pattern triangles;
  for (int i = 0; i < 6; ++i) triangles.AddVertex(0);
  triangles.AddEdge(0, 1);
  triangles.AddEdge(1, 2);
  triangles.AddEdge(2, 0);
  triangles.AddEdge(3, 4);
  triangles.AddEdge(4, 5);
  triangles.AddEdge(5, 3);

  ASSERT_FALSE(ArePatternsIsomorphic(hexagon, triangles));
  // r=1: in C6 every vertex sees a path u-head-w (no edge u-w); in the
  // triangles every vertex sees u-head-w WITH the closing edge u-w, so the
  // radius-1 spider-sets differ already -- triangles close at radius 1.
  // The genuinely colliding pair at r=1 is C6 vs two paths... build the
  // paper-faithful case instead: compare C6 with C6 (equal) and assert the
  // triangle pair differs at r=1 but would collide at r=0 (label counts).
  SpiderSetRepr hex1 = SpiderSetRepr::Compute(hexagon, 1);
  SpiderSetRepr tri1 = SpiderSetRepr::Compute(triangles, 1);
  EXPECT_FALSE(hex1 == tri1);

  // Paper-faithful r=1 collision: two different ways to connect two
  // squares by a perfect matching -- the cube graph Q3 vs the Moebius ring
  // C8 with chords i->(i+4): both 3-regular, 8 vertices, one label; every
  // radius-1 spider is a claw K1,3 with no closed edges, so S[P] collides
  // at r=1; at r=2 the 4-cycles of Q3 vs 5-cycles of the Moebius graph
  // separate them.
  Pattern cube;
  for (int i = 0; i < 8; ++i) cube.AddVertex(0);
  // Two squares 0-1-2-3 and 4-5-6-7 plus vertical matching i -> i+4.
  for (int i = 0; i < 4; ++i) {
    cube.AddEdge(i, (i + 1) % 4);
    cube.AddEdge(4 + i, 4 + (i + 1) % 4);
    cube.AddEdge(i, 4 + i);
  }
  Pattern moebius;
  for (int i = 0; i < 8; ++i) moebius.AddVertex(0);
  for (int i = 0; i < 8; ++i) moebius.AddEdge(i, (i + 1) % 8);
  for (int i = 0; i < 4; ++i) moebius.AddEdge(i, i + 4);

  ASSERT_FALSE(ArePatternsIsomorphic(cube, moebius));
  EXPECT_TRUE(SpiderSetRepr::Compute(cube, 1) ==
              SpiderSetRepr::Compute(moebius, 1))
      << "r=1 spider-sets should collide (both are 8 claws)";
  EXPECT_FALSE(SpiderSetRepr::Compute(cube, 2) ==
               SpiderSetRepr::Compute(moebius, 2))
      << "r=2 must separate the cube from the Moebius-Kantor ring";
}

TEST(SpiderSetTest, DigestStableAcrossRecomputation) {
  Rng rng(5);
  Pattern p = RandomConnectedPattern(10, 0.3, 3, &rng);
  EXPECT_EQ(SpiderSetRepr::Compute(p, 1).digest(),
            SpiderSetRepr::Compute(p, 1).digest());
}

}  // namespace
}  // namespace spidermine
