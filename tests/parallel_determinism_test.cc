#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/dfs_code.h"
#include "spidermine/miner.h"

/// End-to-end determinism of the parallel pipeline: the mined pattern set,
/// supports and ordering must be byte-identical for any thread count with
/// the same rng_seed. Every cross-thread fold in the pipeline happens on
/// the coordinating thread in a stable order, so these tests protect the
/// core contract of the parallel refactor.

namespace spidermine {
namespace {

/// A canonical transcript of a mine result: per-pattern minimum DFS code +
/// support + embedding count, in result order. Two runs with identical
/// transcripts returned the same patterns, supports and ordering.
std::string Transcript(const MineResult& result) {
  std::string out;
  for (const MinedPattern& p : result.patterns) {
    out += StrCat("V=", p.NumVertices(), " E=", p.NumEdges(),
                  " sup=", p.support, " emb=", p.embeddings.size(), " ",
                  DfsCodeToString(MinimumDfsCode(p.pattern)), "\n");
  }
  return out;
}

LabeledGraph ErGraphWithInjection(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.2, 14, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.15, 14, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

LabeledGraph ScaleFreeGraphWithInjection(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateBarabasiAlbert(200, 2, 12, &rng);
  Pattern planted = RandomConnectedPattern(8, 0.2, 12, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

/// Small caps keep each Mine() run to well under a second while still
/// exercising every parallel stage (shards, seeding, lineages, merges,
/// closure); determinism is about folds, not workload size.
MineConfig BaseConfig() {
  MineConfig config;
  config.min_support = 3;
  config.k = 10;
  config.dmax = 4;
  config.vmin = 8;
  config.rng_seed = 7;
  config.seed_count_override = 12;
  config.max_patterns_per_round = 600;
  config.max_embeddings_per_pattern = 1000;
  return config;
}

void ExpectIdenticalAcrossThreadCounts(const LabeledGraph& g,
                                       MineConfig config) {
  config.num_threads = 1;
  Result<MineResult> serial = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string reference = Transcript(*serial);
  EXPECT_FALSE(serial->patterns.empty());
  // The workload must exercise the parallel stages, not vacuously agree.
  EXPECT_GT(serial->stats.num_spiders, 0);
  EXPECT_GT(serial->stats.growth_steps, 0);
  for (int32_t threads : {2, 8}) {
    config.num_threads = threads;
    Result<MineResult> parallel = SpiderMiner(&g, config).Mine();
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(Transcript(*parallel), reference)
        << "results diverged at num_threads=" << threads;
    // Work counters fold in input order, so they must match too.
    EXPECT_EQ(parallel->stats.growth_steps, serial->stats.growth_steps);
    EXPECT_EQ(parallel->stats.extend_calls, serial->stats.extend_calls);
    EXPECT_EQ(parallel->stats.merges, serial->stats.merges);
    EXPECT_EQ(parallel->stats.num_spiders, serial->stats.num_spiders);
  }
}

TEST(ParallelDeterminismTest, ErdosRenyiTopKIdenticalAtAnyThreadCount) {
  LabeledGraph g = ErGraphWithInjection(101);
  ExpectIdenticalAcrossThreadCounts(g, BaseConfig());
}

TEST(ParallelDeterminismTest, ScaleFreeTopKIdenticalAtAnyThreadCount) {
  LabeledGraph g = ScaleFreeGraphWithInjection(202);
  MineConfig config = BaseConfig();
  config.dmax = 4;
  ExpectIdenticalAcrossThreadCounts(g, config);
}

TEST(ParallelDeterminismTest, RestartsUseIndependentSubstreams) {
  LabeledGraph g = ErGraphWithInjection(303);
  MineConfig config = BaseConfig();
  config.restarts = 3;
  config.seed_count_override = 4;
  ExpectIdenticalAcrossThreadCounts(g, config);
}

TEST(ParallelDeterminismTest, ZeroThreadsMeansHardwareDefault) {
  LabeledGraph g = ErGraphWithInjection(404);
  MineConfig config = BaseConfig();
  config.num_threads = 1;
  Result<MineResult> serial = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(serial.ok());
  config.num_threads = 0;  // all cores
  Result<MineResult> parallel = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(Transcript(*parallel), Transcript(*serial));
}

TEST(ParallelDeterminismTest, NegativeThreadCountRejected) {
  LabeledGraph g = ErGraphWithInjection(505);
  MineConfig config = BaseConfig();
  config.num_threads = -2;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
}

}  // namespace
}  // namespace spidermine
