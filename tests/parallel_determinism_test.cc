#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/dfs_code.h"
#include "spider_test_util.h"
#include "spidermine/miner.h"
#include "support/support_measure.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

/// End-to-end determinism of the parallel pipeline: the mined pattern set,
/// supports and ordering must be byte-identical for any thread count with
/// the same rng_seed. Every cross-thread fold in the pipeline happens on
/// the coordinating thread in a stable order, so these tests protect the
/// core contract of the parallel refactor.

namespace spidermine {
namespace {

/// Canonical transcript of a mine result (shared spider_test_util format).
std::string Transcript(const MineResult& result) {
  return PatternsTranscript(result.patterns);
}

LabeledGraph ErGraphWithInjection(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.2, 14, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.15, 14, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

LabeledGraph ScaleFreeGraphWithInjection(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateBarabasiAlbert(200, 2, 12, &rng);
  Pattern planted = RandomConnectedPattern(8, 0.2, 12, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

/// Small caps keep each Mine() run to well under a second while still
/// exercising every parallel stage (shards, seeding, lineages, merges,
/// closure); determinism is about folds, not workload size.
MineConfig BaseConfig() {
  MineConfig config;
  config.min_support = 3;
  config.k = 10;
  config.dmax = 4;
  config.vmin = 8;
  config.rng_seed = 7;
  config.seed_count_override = 12;
  config.max_patterns_per_round = 600;
  config.max_embeddings_per_pattern = 1000;
  return config;
}

void ExpectIdenticalAcrossThreadCounts(const LabeledGraph& g,
                                       MineConfig config) {
  config.num_threads = 1;
  Result<MineResult> serial = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string reference = Transcript(*serial);
  EXPECT_FALSE(serial->patterns.empty());
  // The workload must exercise the parallel stages, not vacuously agree.
  EXPECT_GT(serial->stats.num_spiders, 0);
  EXPECT_GT(serial->stats.growth_steps, 0);
  for (int32_t threads : {2, 8}) {
    config.num_threads = threads;
    Result<MineResult> parallel = SpiderMiner(&g, config).Mine();
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(Transcript(*parallel), reference)
        << "results diverged at num_threads=" << threads;
    // Work counters fold in input order, so they must match too.
    EXPECT_EQ(parallel->stats.growth_steps, serial->stats.growth_steps);
    EXPECT_EQ(parallel->stats.extend_calls, serial->stats.extend_calls);
    EXPECT_EQ(parallel->stats.merges, serial->stats.merges);
    EXPECT_EQ(parallel->stats.num_spiders, serial->stats.num_spiders);
  }
}

TEST(ParallelDeterminismTest, ErdosRenyiTopKIdenticalAtAnyThreadCount) {
  LabeledGraph g = ErGraphWithInjection(101);
  ExpectIdenticalAcrossThreadCounts(g, BaseConfig());
}

TEST(ParallelDeterminismTest, ScaleFreeTopKIdenticalAtAnyThreadCount) {
  LabeledGraph g = ScaleFreeGraphWithInjection(202);
  MineConfig config = BaseConfig();
  config.dmax = 4;
  ExpectIdenticalAcrossThreadCounts(g, config);
}

TEST(ParallelDeterminismTest, RestartsUseIndependentSubstreams) {
  LabeledGraph g = ErGraphWithInjection(303);
  MineConfig config = BaseConfig();
  config.restarts = 3;
  config.seed_count_override = 4;
  ExpectIdenticalAcrossThreadCounts(g, config);
}

TEST(ParallelDeterminismTest, ShardGrainAndThreadsMatrixIdentical) {
  // Shard-grain invariance: the transcript must be byte-identical across
  // {1, 2, 8} threads x {tiny, default, huge} Stage I vertex-range grains.
  LabeledGraph g = ErGraphWithInjection(606);
  MineConfig config = BaseConfig();
  config.num_threads = 1;
  config.stage1_shard_grain = 0;
  Result<MineResult> reference = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string expected = Transcript(*reference);
  EXPECT_FALSE(reference->patterns.empty());
  for (int32_t threads : {1, 2, 8}) {
    for (int64_t grain : {int64_t{3}, int64_t{0}, int64_t{1} << 20}) {
      config.num_threads = threads;
      config.stage1_shard_grain = grain;
      Result<MineResult> run = SpiderMiner(&g, config).Mine();
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(Transcript(*run), expected)
          << "diverged at threads=" << threads << " grain=" << grain;
      EXPECT_EQ(run->stats.num_spiders, reference->stats.num_spiders);
      EXPECT_EQ(run->stats.stage1_steps, reference->stats.stage1_steps);
      EXPECT_EQ(run->stats.growth_steps, reference->stats.growth_steps);
    }
  }
}

TEST(ParallelDeterminismTest, GlobalSpiderBudgetIsGrainAndThreadInvariant) {
  // With max_spiders set, the admitted prefix (and hence everything
  // downstream) must not depend on threads or grain either.
  LabeledGraph g = ScaleFreeGraphWithInjection(707);
  MineConfig config = BaseConfig();
  config.max_spiders = 40;
  config.num_threads = 1;
  Result<MineResult> reference = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->stats.num_spiders, 40);
  const std::string expected = Transcript(*reference);
  for (int32_t threads : {2, 8}) {
    for (int64_t grain : {int64_t{5}, int64_t{0}}) {
      config.num_threads = threads;
      config.stage1_shard_grain = grain;
      Result<MineResult> run = SpiderMiner(&g, config).Mine();
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(Transcript(*run), expected)
          << "budgeted run diverged at threads=" << threads
          << " grain=" << grain;
    }
  }
}

TEST(ParallelDeterminismTest, CheckMergePairPassIdenticalUnderMergePressure) {
  // The CheckMerge pass schedules individual pattern PAIRS on the pool (one
  // hot anchor bucket no longer serializes it). Crank up merge pressure —
  // many seeds, a generous pair cap, several planted copies sharing
  // structure — and require the transcript AND the pair-level work counters
  // to be byte-identical across thread counts.
  Rng rng(4242);
  GraphBuilder builder = GenerateErdosRenyi(220, 2.0, 10, &rng);
  Pattern planted = RandomConnectedPattern(12, 0.15, 10, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 4, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  MineConfig config = BaseConfig();
  config.seed_count_override = 24;
  config.max_merge_pairs_per_key = 32;
  config.num_threads = 1;
  Result<MineResult> serial = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(serial.ok()) << serial.status();
  // Vacuous without real merge work.
  EXPECT_GT(serial->stats.merges, 0);
  EXPECT_GT(serial->stats.merge_attempts, 1);
  const std::string reference = Transcript(*serial);
  for (int32_t threads : {2, 8}) {
    config.num_threads = threads;
    Result<MineResult> parallel = SpiderMiner(&g, config).Mine();
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(Transcript(*parallel), reference)
        << "merge-heavy run diverged at num_threads=" << threads;
    EXPECT_EQ(parallel->stats.merges, serial->stats.merges);
    EXPECT_EQ(parallel->stats.merge_attempts, serial->stats.merge_attempts);
    EXPECT_EQ(parallel->stats.iso_checks_run, serial->stats.iso_checks_run);
  }
}

TEST(ParallelDeterminismTest, MeasureThreadsBudgetMatrixIdentical) {
  // Every support measure must honour the same determinism contract: for a
  // fixed seed the transcript is byte-identical across thread counts AND
  // across embedding-list budgets (budget 0 = VF2-only closure exercises
  // the fallback enumeration path; the default carries lists). The
  // transaction measure additionally runs with a per-run sample, whose RNG
  // substream must not depend on threading either.
  LabeledGraph g = ErGraphWithInjection(1111);
  VertexTxnMap txn_map;
  txn_map.num_transactions = 8;
  txn_map.offsets.assign(static_cast<size_t>(g.NumVertices()) + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    txn_map.txn_ids.push_back(static_cast<int32_t>(v % 8));
    txn_map.offsets[static_cast<size_t>(v) + 1] = v + 1;
  }

  for (SupportMeasureKind measure :
       {SupportMeasureKind::kGreedyMisVertex, SupportMeasureKind::kGreedyMisEdge,
        SupportMeasureKind::kMinImage, SupportMeasureKind::kEmbeddingCount,
        SupportMeasureKind::kHomomorphism, SupportMeasureKind::kTransaction}) {
    MineConfig config = BaseConfig();
    config.support_measure = measure;
    if (measure == SupportMeasureKind::kTransaction) {
      config.txn_map = &txn_map;
      config.txn_sample = 5;  // a genuine sample: 5 of 8 transactions
    }
    config.num_threads = 1;
    Result<MineResult> reference = SpiderMiner(&g, config).Mine();
    ASSERT_TRUE(reference.ok())
        << SupportMeasureName(measure) << ": " << reference.status();
    EXPECT_FALSE(reference->patterns.empty()) << SupportMeasureName(measure);
    const std::string expected = Transcript(*reference);
    for (int32_t threads : {1, 8}) {
      for (int64_t budget : {int64_t{4096}, int64_t{0}}) {
        config.num_threads = threads;
        config.embedding_list_budget = budget;
        Result<MineResult> run = SpiderMiner(&g, config).Mine();
        ASSERT_TRUE(run.ok()) << run.status();
        EXPECT_EQ(Transcript(*run), expected)
            << SupportMeasureName(measure) << " diverged at threads="
            << threads << " budget=" << budget;
      }
    }
  }
}

TEST(ParallelDeterminismTest, CallerProvidedPoolReusedAcrossMines) {
  // One externally owned pool serves several Mine() calls (the bench-sweep
  // / restart reuse path) and produces the same transcript as per-Mine
  // pool construction.
  LabeledGraph g = ErGraphWithInjection(808);
  MineConfig config = BaseConfig();
  config.num_threads = 4;
  Result<MineResult> owned = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(owned.ok());
  ThreadPool shared_pool(4);
  config.pool = &shared_pool;
  for (int run = 0; run < 3; ++run) {
    Result<MineResult> result = SpiderMiner(&g, config).Mine();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(Transcript(*result), Transcript(*owned))
        << "shared-pool run " << run << " diverged";
  }
}

TEST(ParallelDeterminismTest, NegativeShardGrainRejected) {
  LabeledGraph g = ErGraphWithInjection(909);
  MineConfig config = BaseConfig();
  config.stage1_shard_grain = -7;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
}

TEST(ParallelDeterminismTest, ZeroThreadsMeansHardwareDefault) {
  LabeledGraph g = ErGraphWithInjection(404);
  MineConfig config = BaseConfig();
  config.num_threads = 1;
  Result<MineResult> serial = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(serial.ok());
  config.num_threads = 0;  // all cores
  Result<MineResult> parallel = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(Transcript(*parallel), Transcript(*serial));
}

TEST(ParallelDeterminismTest, NegativeThreadCountRejected) {
  LabeledGraph g = ErGraphWithInjection(505);
  MineConfig config = BaseConfig();
  config.num_threads = -2;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
}

}  // namespace
}  // namespace spidermine
