#include "baselines/grew.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

namespace spidermine {
namespace {

/// Three copies of the labeled path 0-1-2.
LabeledGraph ThreePaths() {
  GraphBuilder b;
  for (int copy = 0; copy < 3; ++copy) {
    VertexId base = b.AddVertex(0);
    b.AddVertex(1);
    b.AddVertex(2);
    b.AddEdge(base, base + 1);
    b.AddEdge(base + 1, base + 2);
  }
  return std::move(b.Build()).value();
}

TEST(GrewTest, MergesUpToFullPath) {
  LabeledGraph g = ThreePaths();
  GrewConfig config;
  config.min_support = 3;
  Result<GrewResult> result = GrewDiscover(g, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  // The largest pattern should be the full 3-vertex path, support 3.
  const GrewPattern& top = result->patterns.front();
  EXPECT_EQ(top.pattern.NumVertices(), 3);
  EXPECT_EQ(top.pattern.NumEdges(), 2);
  EXPECT_EQ(top.support, 3);
}

TEST(GrewTest, EmbeddingsAreVertexDisjoint) {
  LabeledGraph g = ThreePaths();
  GrewConfig config;
  config.min_support = 2;
  Result<GrewResult> result = GrewDiscover(g, config);
  ASSERT_TRUE(result.ok());
  for (const GrewPattern& p : result->patterns) {
    std::unordered_set<VertexId> used;
    for (const Embedding& e : p.embeddings) {
      for (VertexId v : e) {
        EXPECT_TRUE(used.insert(v).second)
            << "vertex " << v << " reused across embeddings of "
            << p.pattern.ToString();
      }
    }
    EXPECT_EQ(p.support, static_cast<int64_t>(p.embeddings.size()));
  }
}

TEST(GrewTest, SupportThresholdHolds) {
  LabeledGraph g = ThreePaths();
  GrewConfig config;
  config.min_support = 4;  // more than the 3 copies
  Result<GrewResult> result = GrewDiscover(g, config);
  ASSERT_TRUE(result.ok());
  for (const GrewPattern& p : result->patterns) {
    // Only the single-vertex level-0 patterns can survive (labels with
    // >= 4 vertices do not exist here, so none should).
    EXPECT_GE(p.support, 4);
  }
}

TEST(GrewTest, FindsPlantedPatternQuickly) {
  Rng rng(5);
  GraphBuilder builder = GenerateErdosRenyi(300, 1.5, 20, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.0, 20, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 4, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();
  GrewConfig config;
  config.min_support = 3;
  config.max_iterations = 12;
  Result<GrewResult> result = GrewDiscover(g, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  // GREW merges doubles pattern size per round, so 12 rounds suffice for
  // a 10-vertex pattern; it should get most of the way there.
  EXPECT_GE(result->patterns.front().pattern.NumVertices(), 6);
}

TEST(GrewTest, InvalidConfigRejected) {
  LabeledGraph g = ThreePaths();
  GrewConfig config;
  config.min_support = 0;
  EXPECT_FALSE(GrewDiscover(g, config).ok());
}

TEST(GrewTest, IterationCapRespected) {
  LabeledGraph g = ThreePaths();
  GrewConfig config;
  config.min_support = 2;
  config.max_iterations = 1;
  Result<GrewResult> result = GrewDiscover(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->iterations, 1);
}

}  // namespace
}  // namespace spidermine
