#include "pattern/embedding_list.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/vf2.h"
#include "spider_test_util.h"
#include "spidermine/session.h"

/// The embedding-list engine's contract (pattern/embedding_list.h): an
/// unsaturated carried list is E[P] bit for bit — the same set a VF2 search
/// enumerates — at any budget, chunk grain and thread count, and a query
/// served from carried lists returns a byte-identical top-K to one forced
/// onto the VF2 fallback.

namespace spidermine {
namespace {

LabeledGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.0, 14, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.15, 14, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

/// Canonically sorted copy — list builders and VF2 enumerate in different
/// orders, so set comparisons go through this.
std::vector<Embedding> Canonical(std::vector<Embedding> embeddings) {
  CanonicalizeEmbeddingOrder(&embeddings);
  return embeddings;
}

TEST(EmbeddingListTest, StarListsMatchVf2OnEverySpider) {
  LabeledGraph g = TestGraph(11);
  SessionConfig config;
  config.min_support = 3;
  Result<MiningSession> session = MiningSession::Create(&g, config);
  ASSERT_TRUE(session.ok()) << session.status();
  const SpiderStore& store = session->store();
  ASSERT_GT(store.size(), 0u);
  int32_t compared = 0;
  for (int32_t id = 0; id < static_cast<int32_t>(store.size()); ++id) {
    EmbeddingListRef list =
        BuildStarEmbeddingList(g, store, id, /*budget=*/1 << 20);
    ASSERT_NE(list, nullptr);
    if (list->saturated) continue;  // genuinely huge star; budget overflow
    Vf2Options options;
    options.max_embeddings = 1 << 20;
    std::vector<Embedding> expected =
        Canonical(FindEmbeddings(store.PatternOf(id), g, options));
    EXPECT_EQ(Canonical(list->embeddings), expected)
        << "spider " << id << " carried list != VF2 E[P]";
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

/// Regression for the arrangement-vs-combination distinction: a star with
/// equal-key sibling leaves has every ORDERED assignment of images in its
/// E[P] (VF2 enumerates all of them); a combination enumeration would
/// silently emit each image set once.
TEST(EmbeddingListTest, EqualKeySiblingLeavesYieldAllArrangements) {
  GraphBuilder builder;
  const VertexId head = builder.AddVertex(0);
  for (int i = 0; i < 3; ++i) {
    builder.AddEdge(head, builder.AddVertex(1), 0);
  }
  LabeledGraph g = std::move(builder.Build()).value();
  SessionConfig config;
  config.min_support = 1;
  Result<MiningSession> session = MiningSession::Create(&g, config);
  ASSERT_TRUE(session.ok()) << session.status();
  const SpiderStore& store = session->store();
  const int32_t star2 = FindStar(store, /*head=*/0, {1, 1});
  ASSERT_GE(star2, 0) << "expected the 2-leaf star in the mined store";
  EmbeddingListRef list =
      BuildStarEmbeddingList(g, store, star2, /*budget=*/100);
  ASSERT_NE(list, nullptr);
  ASSERT_FALSE(list->saturated);
  // 3 choices for the first leaf times 2 for the second: 6 arrangements,
  // exactly what VF2 finds.
  EXPECT_EQ(list->embeddings.size(), 6u);
  Vf2Options options;
  std::vector<Embedding> expected =
      Canonical(FindEmbeddings(store.PatternOf(star2), g, options));
  EXPECT_EQ(Canonical(list->embeddings), expected);
}

/// The deterministic fold: identical content (and an identical saturation
/// verdict) at every chunk grain and thread count, including grains that
/// shuffle how anchors land in chunks.
TEST(EmbeddingListTest, StarBuildDeterministicUnderGrainsAndThreads) {
  LabeledGraph g = TestGraph(23);
  SessionConfig config;
  config.min_support = 3;
  Result<MiningSession> session = MiningSession::Create(&g, config);
  ASSERT_TRUE(session.ok()) << session.status();
  const SpiderStore& store = session->store();
  ASSERT_GT(store.size(), 0u);
  const int32_t id = static_cast<int32_t>(store.size()) / 2;
  for (int64_t budget : {int64_t{1} << 20, int64_t{8}, int64_t{1}}) {
    EmbeddingListRef serial = BuildStarEmbeddingList(g, store, id, budget);
    ASSERT_NE(serial, nullptr);
    for (int32_t threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      for (int64_t grain : {int64_t{1}, int64_t{2}, int64_t{7}, int64_t{64}}) {
        EmbeddingListRef parallel = BuildStarEmbeddingList(
            g, store, id, budget, &pool, /*token=*/nullptr, grain);
        ASSERT_NE(parallel, nullptr);
        EXPECT_EQ(parallel->saturated, serial->saturated)
            << "budget=" << budget << " threads=" << threads
            << " grain=" << grain;
        EXPECT_EQ(parallel->embeddings, serial->embeddings)
            << "budget=" << budget << " threads=" << threads
            << " grain=" << grain;
      }
    }
  }
}

TopKQuery EngineQuery(int64_t embedding_list_budget) {
  TopKQuery query;
  query.k = 8;
  query.dmax = 4;
  query.vmin = 8;
  query.rng_seed = 7;
  query.seed_count_override = 10;
  query.embedding_list_budget = embedding_list_budget;
  return query;
}

/// The tentpole acceptance test: carried-list serving (any budget,
/// including one small enough to overflow mid-lineage) returns the same
/// bytes as forced-VF2 serving, at 1, 2 and 8 threads.
TEST(EmbeddingListTest, EngineAndVf2ModesReturnIdenticalTopK) {
  LabeledGraph g = TestGraph(11);
  std::string reference;
  for (int32_t threads : {1, 2, 8}) {
    SessionConfig config;
    config.min_support = 3;
    config.num_threads = threads;
    Result<MiningSession> session = MiningSession::Create(&g, config);
    ASSERT_TRUE(session.ok()) << session.status();
    for (int64_t budget : {int64_t{0}, int64_t{1}, int64_t{4096}}) {
      Result<QueryResult> result = session->RunQuery(EngineQuery(budget));
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_FALSE(result->patterns.empty());
      const std::string transcript = PatternsTranscript(result->patterns);
      if (reference.empty()) {
        reference = transcript;
      } else {
        EXPECT_EQ(transcript, reference)
            << "budget=" << budget << " threads=" << threads;
      }
      // Counter invariants: the engine-off mode carries nothing; every
      // closure candidate is either carried or a fallback.
      if (budget == 0) {
        EXPECT_EQ(result->stats.emb_carried, 0);
        EXPECT_EQ(result->stats.emb_extensions, 0);
        EXPECT_GT(result->stats.vf2_fallbacks, 0);
      } else {
        EXPECT_GT(result->stats.emb_extensions, 0);
        EXPECT_GT(result->stats.emb_carried + result->stats.vf2_fallbacks, 0)
            << "closure ran but classified no candidate";
      }
    }
  }
}

/// Budget 1 saturates essentially every lineage mid-growth; the query must
/// degrade to VF2 fallbacks (counted), not to wrong answers.
TEST(EmbeddingListTest, OverflowMidLineageFallsBackToVf2) {
  LabeledGraph g = TestGraph(11);
  SessionConfig config;
  config.min_support = 3;
  Result<MiningSession> session = MiningSession::Create(&g, config);
  ASSERT_TRUE(session.ok()) << session.status();
  Result<QueryResult> tiny = session->RunQuery(EngineQuery(1));
  ASSERT_TRUE(tiny.ok()) << tiny.status();
  Result<QueryResult> off = session->RunQuery(EngineQuery(0));
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(PatternsTranscript(tiny->patterns),
            PatternsTranscript(off->patterns));
  EXPECT_GT(tiny->stats.vf2_fallbacks, 0)
      << "a 1-embedding budget must overflow somewhere";
}

/// With a budget comfortably above every E[P] on this graph, closure never
/// re-runs VF2 — the counter CI smoke-tests against a served query.
TEST(EmbeddingListTest, AmpleBudgetEliminatesVf2Fallbacks) {
  LabeledGraph g = TestGraph(11);
  SessionConfig config;
  config.min_support = 3;
  Result<MiningSession> session = MiningSession::Create(&g, config);
  ASSERT_TRUE(session.ok()) << session.status();
  TopKQuery query = EngineQuery(1 << 20);
  query.max_embeddings_per_pattern = 1 << 20;
  Result<QueryResult> result = session->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.emb_carried, 0);
  EXPECT_EQ(result->stats.vf2_fallbacks, 0);
}

TEST(EmbeddingListTest, NegativeBudgetRejected) {
  TopKQuery query = EngineQuery(-1);
  EXPECT_FALSE(query.Validate().ok());
}

}  // namespace
}  // namespace spidermine
