#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace spidermine {
namespace {

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool2(-5);
  EXPECT_EQ(pool2.num_threads(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: destruction must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 10007;  // prime, to exercise ragged chunking
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one_calls{0};
  pool.ParallelFor(1, [&one_calls](int64_t i) {
    EXPECT_EQ(i, 0);
    one_calls.fetch_add(1);
  });
  EXPECT_EQ(one_calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForDeterministicResultViaSlots) {
  // The idiom the library uses: each iteration writes only its own slot,
  // so the result is independent of scheduling.
  ThreadPool pool(8);
  const int64_t n = 5000;
  std::vector<int64_t> out(n, 0);
  pool.ParallelFor(n, [&out](int64_t i) { out[i] = i * i; });
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(100, [&total](int64_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 10 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelForChunks(n, /*grain=*/64, [&hits](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForChunksGrainBoundsRangeSize) {
  ThreadPool pool(3);
  std::atomic<int64_t> max_range{0};
  pool.ParallelForChunks(1000, /*grain=*/7,
                         [&max_range](int64_t begin, int64_t end) {
                           int64_t len = end - begin;
                           int64_t prev = max_range.load();
                           while (len > prev &&
                                  !max_range.compare_exchange_weak(prev, len)) {
                           }
                         });
  EXPECT_LE(max_range.load(), 7);
  EXPECT_GT(max_range.load(), 0);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersStayIndependent) {
  // The serving configuration: several caller threads run parallel loops
  // on ONE shared pool at once (concurrent queries on a session pool).
  // Each call must cover exactly its own iterations and return when they
  // are done — the per-call latch, not a pool-global wait.
  ThreadPool pool(2);
  constexpr int kCallers = 4;
  const int64_t n = 20011;
  std::vector<std::vector<int64_t>> out(
      kCallers, std::vector<int64_t>(static_cast<size_t>(n), 0));
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &out, c, n] {
      for (int round = 0; round < 3; ++round) {
        pool.ParallelForChunks(
            n, /*grain=*/64,
            [&out, c, round](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                out[static_cast<size_t>(c)][static_cast<size_t>(i)] =
                    i + c + round;
              }
            });
        // The call must not return before its own iterations finished:
        // every slot holds this round's value right here.
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[static_cast<size_t>(c)][static_cast<size_t>(i)],
                    i + c + round)
              << "caller " << c << " round " << round << " index " << i;
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
}

TEST(CancellationTokenTest, StartsUncancelledAndLatchesOnRequest) {
  CancellationToken token;
  EXPECT_FALSE(token.IsCancelled());
  token.RequestCancel();
  EXPECT_TRUE(token.IsCancelled());
  EXPECT_TRUE(token.IsCancelled());  // latched
}

TEST(CancellationTokenTest, TripsWhenBoundDeadlineExpires) {
  Deadline expired(1e-9);
  // Spin briefly so the deadline is certainly past.
  while (!expired.Expired()) {
  }
  CancellationToken token(&expired);
  EXPECT_TRUE(token.IsCancelled());

  Deadline unlimited = Deadline::Unlimited();
  CancellationToken open(&unlimited);
  EXPECT_FALSE(open.IsCancelled());
}

TEST(CancellationTokenTest, CancelledTokenSkipsUnstartedWork) {
  ThreadPool pool(4);
  CancellationToken token;
  token.RequestCancel();
  std::atomic<int64_t> ran{0};
  pool.ParallelFor(100000, [&ran](int64_t) { ran.fetch_add(1); }, &token);
  EXPECT_EQ(ran.load(), 0) << "a pre-cancelled loop must not start";
}

TEST(CancellationTokenTest, MidLoopCancellationStopsWorkersEarly) {
  ThreadPool pool(4);
  CancellationToken token;
  std::atomic<int64_t> ran{0};
  const int64_t n = 1 << 20;
  pool.ParallelForChunks(
      n, /*grain=*/16,
      [&ran, &token](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) ran.fetch_add(1);
        // First chunk to finish pulls the plug on everything else.
        token.RequestCancel();
      },
      &token);
  EXPECT_GT(ran.load(), 0);
  EXPECT_LT(ran.load(), n) << "cancellation must skip unstarted chunks";
}

}  // namespace
}  // namespace spidermine
