#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace spidermine {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformRealInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(17);
  for (size_t n : {10u, 100u, 1000u}) {
    for (size_t k : {0u, 1u, 5u, 10u}) {
      if (k > n) continue;
      std::vector<size_t> sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), k);
      for (size_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(19);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(8, 8);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleCoversBothDenseAndSparsePaths) {
  Rng rng(23);
  // Dense path (k*3 >= n) and sparse path (k*3 < n) both yield valid sets.
  auto dense = rng.SampleWithoutReplacement(9, 4);
  auto sparse = rng.SampleWithoutReplacement(1000, 3);
  EXPECT_EQ(dense.size(), 4u);
  EXPECT_EQ(sparse.size(), 3u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(31);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (child1.UniformInt(0, 1 << 30) != child2.UniformInt(0, 1 << 30)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 40);
}

}  // namespace
}  // namespace spidermine
