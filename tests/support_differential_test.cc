#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/barabasi_albert.h"
#include "gen/dblp_sim.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "gen/transaction_gen.h"
#include "graph/graph_builder.h"
#include "pattern/vf2.h"
#include "spider_test_util.h"
#include "spidermine/session.h"
#include "spidermine/txn_adapter.h"
#include "support/support_measure.h"

/// \file support_differential_test.cc
/// Differential testing of the support-measure lattice. Every measure is
/// recomputed from brute-force VF2 embedding lists (isomorphic and
/// homomorphic) and cross-checked against the others:
///   * dominance on every mined pattern: homomorphism >= MNI >= greedy
///     vertex-MIS, and MIS counts never exceed the embedding count;
///   * anti-monotonicity along leaf-peel lineages, provable for
///     {min-image, homomorphism, transaction-with-map} and asserted
///     empirically on these fixed seeds for the greedy MIS measures
///     (embedding count is NOT anti-monotone, so it only enters through
///     dominance);
///   * the engine's kHomomorphism answers equal the brute-force
///     homomorphism oracle on small graphs, at any embedding-list budget.

namespace spidermine {
namespace {

constexpr int64_t kEnumCap = 50000;
constexpr int64_t kStateCap = 2000000;

/// Brute-force embedding lists of one pattern: the full injective list
/// (MNI's input), its image-deduped version (what MIS measures consume in
/// the engine), and the homomorphic list. `complete` is false when either
/// enumeration hit a cap — per-list dominance still holds on a truncated
/// list, cross-list claims (hom >= MNI, lineages) do not.
struct BruteForceLists {
  std::vector<Embedding> iso;
  std::vector<Embedding> iso_dedup;
  std::vector<Embedding> hom;
  bool complete = true;
};

std::vector<Embedding> CappedEmbeddings(const Pattern& p,
                                        const LabeledGraph& g,
                                        bool homomorphic, bool* complete) {
  Vf2Options options;
  options.max_embeddings = kEnumCap;
  options.max_states = kStateCap;
  options.homomorphic = homomorphic;
  std::vector<Embedding> out;
  Vf2Stats stats = EnumerateEmbeddings(p, g, options,
                                       [&out](const Embedding& e) {
                                         out.push_back(e);
                                         return true;
                                       });
  if (stats.aborted || static_cast<int64_t>(out.size()) >= kEnumCap) {
    *complete = false;
  }
  return out;
}

BruteForceLists Enumerate(const Pattern& p, const LabeledGraph& g) {
  BruteForceLists out;
  out.iso = CappedEmbeddings(p, g, /*homomorphic=*/false, &out.complete);
  out.hom = CappedEmbeddings(p, g, /*homomorphic=*/true, &out.complete);
  out.iso_dedup = out.iso;
  DedupEmbeddingsByImage(&out.iso_dedup);
  return out;
}

/// Removes one vertex whose removal keeps the pattern connected and
/// non-trivial (every connected graph has a non-cut vertex), preferring
/// degree-1 leaves so the chain mirrors how growth actually built it.
std::optional<Pattern> PeelOneVertex(const Pattern& p) {
  if (p.NumVertices() <= 2) return std::nullopt;
  std::vector<VertexId> order;
  for (VertexId v = 0; v < p.NumVertices(); ++v) {
    if (p.Degree(v) == 1) order.push_back(v);
  }
  for (VertexId v = 0; v < p.NumVertices(); ++v) {
    if (p.Degree(v) != 1) order.push_back(v);
  }
  for (VertexId drop : order) {
    std::vector<VertexId> keep;
    for (VertexId v = 0; v < p.NumVertices(); ++v) {
      if (v != drop) keep.push_back(v);
    }
    Pattern sub = p.InducedSubgraph(keep);
    if (sub.NumEdges() > 0 && sub.IsConnected()) return sub;
  }
  return std::nullopt;
}

/// Synthetic per-vertex payloads: vertex v carries {v % 16, 7v % 16}
/// (CSR-packed, sorted, deduped) — arbitrary but deterministic, so the
/// transaction-with-map measure has non-trivial intersections.
VertexTxnMap SyntheticTxnMap(int64_t num_vertices) {
  VertexTxnMap map;
  map.num_transactions = 16;
  map.offsets.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (VertexId v = 0; v < num_vertices; ++v) {
    std::vector<int32_t> ids{static_cast<int32_t>(v % 16),
                             static_cast<int32_t>((7 * v) % 16)};
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (int32_t t : ids) map.txn_ids.push_back(t);
    map.offsets[static_cast<size_t>(v) + 1] =
        static_cast<int64_t>(map.txn_ids.size());
  }
  return map;
}

/// All support values of one pattern, recomputed from brute force.
struct MeasureVector {
  int64_t count = 0;
  int64_t mni = 0;
  int64_t mis_vertex = 0;
  int64_t mis_edge = 0;
  int64_t hom = 0;
  int64_t txn_map = 0;
};

MeasureVector Measure(const Pattern& p, const BruteForceLists& lists,
                      const VertexTxnMap& txn_map) {
  MeasureVector m;
  m.count = ComputeSupport(SupportMeasureKind::kEmbeddingCount, p,
                           lists.iso_dedup);
  m.mni = ComputeSupport(SupportMeasureKind::kMinImage, p, lists.iso);
  m.mis_vertex =
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, lists.iso_dedup);
  m.mis_edge =
      ComputeSupport(SupportMeasureKind::kGreedyMisEdge, p, lists.iso_dedup);
  m.hom = ComputeSupport(SupportMeasureKind::kHomomorphism, p, lists.hom);
  SupportContext ctx;
  ctx.txn_map = &txn_map;
  m.txn_map =
      ComputeSupport(SupportMeasureKind::kTransaction, p, lists.iso, ctx);
  return m;
}

LabeledGraph ScenarioGraph(const std::string& name) {
  Rng rng(name == "er" ? 101 : 202);
  if (name == "er") {
    GraphBuilder builder = GenerateErdosRenyi(120, 2.0, 10, &rng);
    Pattern planted = RandomPatternWithDiameter(7, 4, 10, &rng);
    PatternInjector injector(&builder);
    EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
    return std::move(builder.Build()).value();
  }
  if (name == "ba") {
    GraphBuilder builder = GenerateBarabasiAlbert(120, 2, 10, &rng);
    Pattern planted = RandomPatternWithDiameter(7, 4, 10, &rng);
    PatternInjector injector(&builder);
    EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
    return std::move(builder.Build()).value();
  }
  // Scaled-down DBLP-sim: same generator, small and sparse enough for
  // VF2 sweeps. With only 4 labels the homomorphic lists explode inside
  // big dense communities, so keep research groups small (~6 authors).
  DblpSimConfig config;
  config.num_authors = 400;
  config.target_edges = 800;
  config.num_communities = 64;
  config.common_pattern_vertices = 9;
  config.common_pattern_support = 4;
  config.num_cluster_patterns = 1;
  config.cluster_pattern_vertices = 7;
  config.cluster_pattern_support = 5;
  Result<DblpDataset> dataset = GenerateDblpSim(config);
  EXPECT_TRUE(dataset.ok()) << dataset.status();
  return std::move(dataset->graph);
}

std::vector<MinedPattern> MineScenario(const LabeledGraph& g) {
  SessionConfig session_config;
  session_config.min_support = 2;
  Result<MiningSession> session = MiningSession::Create(&g, session_config);
  EXPECT_TRUE(session.ok()) << session.status();
  TopKQuery query;
  query.k = 8;
  query.dmax = 4;
  query.vmin = 6;
  query.rng_seed = 9;
  query.seed_count_override = 8;
  // The mined patterns are inputs to the differential sweep, not the
  // object under test — cap the engine's work hard (lists, rounds,
  // per-round frontier) and skip closure so even the dense 4-label
  // DBLP-sim graph mines in seconds.
  query.max_embeddings_per_pattern = 512;
  query.max_patterns_per_round = 48;
  query.max_seed_embeddings_per_anchor = 4;
  query.stage3_max_rounds = 3;
  query.close_internal_edges = false;
  Result<QueryResult> result = session->RunQuery(query);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result->patterns)
                     : std::vector<MinedPattern>{};
}

class MeasureDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(MeasureDifferential, DominanceHoldsOnEveryMinedPattern) {
  LabeledGraph g = ScenarioGraph(GetParam());
  VertexTxnMap txn_map = SyntheticTxnMap(g.NumVertices());
  std::vector<MinedPattern> patterns = MineScenario(g);
  ASSERT_FALSE(patterns.empty());
  size_t examined = 0;
  size_t cross_list_checked = 0;
  for (const MinedPattern& mp : patterns) {
    if (examined++ >= 6) break;  // VF2 sweeps are the cost driver
    BruteForceLists lists = Enumerate(mp.pattern, g);
    MeasureVector m = Measure(mp.pattern, lists, txn_map);
    // Cross-list dominance needs complete lists: every homomorphic
    // image-column contains the isomorphic one.
    if (lists.complete) {
      EXPECT_GE(m.hom, m.mni) << mp.pattern.ToString();
      ++cross_list_checked;
    }
    // Per-list dominance holds on any (even truncated) list:
    // vertex-disjoint embeddings contribute distinct images per column.
    EXPECT_GE(m.mni, m.mis_vertex) << mp.pattern.ToString();
    EXPECT_LE(m.mis_vertex, m.mis_edge) << mp.pattern.ToString();
    EXPECT_LE(m.mis_edge, m.count) << mp.pattern.ToString();
    EXPECT_LE(m.txn_map, txn_map.num_transactions);
  }
  EXPECT_GT(cross_list_checked, 0u)
      << "every examined pattern hit the enumeration cap";
}

TEST_P(MeasureDifferential, MeasuresAreAntiMonotoneAlongLeafPeelLineages) {
  LabeledGraph g = ScenarioGraph(GetParam());
  VertexTxnMap txn_map = SyntheticTxnMap(g.NumVertices());
  std::vector<MinedPattern> patterns = MineScenario(g);
  ASSERT_FALSE(patterns.empty());
  size_t chains = 0;
  for (const MinedPattern& mp : patterns) {
    if (chains++ >= 4) break;
    Pattern current = mp.pattern;
    BruteForceLists lists = Enumerate(current, g);
    if (!lists.complete) continue;
    MeasureVector super = Measure(current, lists, txn_map);
    for (int step = 0; step < 3; ++step) {
      std::optional<Pattern> peeled = PeelOneVertex(current);
      if (!peeled.has_value()) break;
      BruteForceLists sub_lists = Enumerate(*peeled, g);
      if (!sub_lists.complete) break;
      MeasureVector sub = Measure(*peeled, sub_lists, txn_map);
      // Provably anti-monotone: restricting a (hom-)embedding of the
      // super-pattern yields one of the sub-pattern, so every image
      // column and every covered transaction set can only grow.
      EXPECT_GE(sub.mni, super.mni) << current.ToString();
      EXPECT_GE(sub.hom, super.hom) << current.ToString();
      EXPECT_GE(sub.txn_map, super.txn_map) << current.ToString();
      // Empirical on these fixed seeds (greedy MIS is an approximation;
      // the exact MIS is anti-monotone, the greedy one is checked here).
      EXPECT_GE(sub.mis_vertex, super.mis_vertex) << current.ToString();
      EXPECT_GE(sub.mis_edge, super.mis_edge) << current.ToString();
      current = std::move(*peeled);
      super = sub;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, MeasureDifferential,
                         ::testing::Values("er", "ba", "dblp"));

TEST(HomomorphismOracleTest, EngineEqualsBruteForceAtAnyBudget) {
  Rng rng(7);
  GraphBuilder builder = GenerateErdosRenyi(60, 1.8, 8, &rng);
  Pattern planted = RandomPatternWithDiameter(6, 3, 8, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 3, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  SessionConfig session_config;
  session_config.min_support = 2;
  Result<MiningSession> session = MiningSession::Create(&g, session_config);
  ASSERT_TRUE(session.ok()) << session.status();

  TopKQuery query;
  query.k = 8;
  query.dmax = 4;
  query.vmin = 5;
  query.rng_seed = 13;
  query.seed_count_override = 8;
  query.restarts = 2;
  query.support_measure = SupportMeasureKind::kHomomorphism;
  query.max_embeddings_per_pattern = 1000000;

  Result<QueryResult> carried = session->RunQuery(query);
  ASSERT_TRUE(carried.ok()) << carried.status();
  ASSERT_FALSE(carried->patterns.empty());
  EXPECT_EQ(carried->stats.support_measure, SupportMeasureKind::kHomomorphism);

  for (const MinedPattern& mp : carried->patterns) {
    // Brute-force homomorphism oracle: minimum-image count over the full
    // homomorphic embedding list.
    Vf2Options options;
    options.max_embeddings = 2000000;
    options.homomorphic = true;
    std::vector<Embedding> hom = FindEmbeddings(mp.pattern, g, options);
    ASSERT_LT(static_cast<int64_t>(hom.size()), options.max_embeddings);
    EXPECT_EQ(mp.support, ComputeSupport(SupportMeasureKind::kHomomorphism,
                                         mp.pattern, hom))
        << mp.pattern.ToString();
    // Self-consistency: the reported list reproduces the reported support.
    EXPECT_EQ(mp.support, ComputeSupport(SupportMeasureKind::kHomomorphism,
                                         mp.pattern, mp.embeddings));
  }

  // Budget invariance: a VF2-only run (budget 0) is byte-identical to the
  // carried-list run — the two homomorphic enumeration paths agree.
  TopKQuery vf2_only = query;
  vf2_only.embedding_list_budget = 0;
  Result<QueryResult> fallback = session->RunQuery(vf2_only);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_EQ(PatternsTranscript(fallback->patterns),
            PatternsTranscript(carried->patterns));
}

TEST(TransactionDifferentialTest, DisjointUnionLineagesAndSampling) {
  TransactionDatasetConfig gen_config;
  gen_config.num_graphs = 6;
  gen_config.vertices_per_graph = 40;
  gen_config.avg_degree = 2.0;
  gen_config.num_labels = 10;
  gen_config.num_large = 1;
  gen_config.large_vertices = 8;
  gen_config.large_txn_support = 4;
  gen_config.seed = 3;
  Result<TransactionDataset> data = GenerateTransactionDataset(gen_config);
  ASSERT_TRUE(data.ok()) << data.status();
  Result<TransactionGraph> txn = BuildTransactionGraph(data->database);
  ASSERT_TRUE(txn.ok()) << txn.status();

  SessionConfig session_config;
  session_config.min_support = 2;
  session_config.txn_of_vertex = &txn->txn_of_vertex;
  Result<MiningSession> session =
      MiningSession::Create(&txn->graph, session_config);
  ASSERT_TRUE(session.ok()) << session.status();

  TopKQuery query;
  query.k = 6;
  query.dmax = 6;
  query.vmin = 6;
  query.rng_seed = 5;
  query.seed_count_override = 8;
  query.support_measure = SupportMeasureKind::kTransaction;

  Result<QueryResult> full = session->RunQuery(query);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_FALSE(full->patterns.empty());

  // Legacy (disjoint-union) transaction support is anti-monotone along
  // peel chains: all image vertices of one embedding share a transaction.
  SupportContext ctx;
  ctx.txn_of_vertex = &txn->txn_of_vertex;
  Pattern current = full->patterns.front().pattern;
  int64_t super_support = ComputeSupport(
      SupportMeasureKind::kTransaction, current,
      FindEmbeddings(current, txn->graph), ctx);
  for (int step = 0; step < 3; ++step) {
    std::optional<Pattern> peeled = PeelOneVertex(current);
    if (!peeled.has_value()) break;
    int64_t sub_support = ComputeSupport(
        SupportMeasureKind::kTransaction, *peeled,
        FindEmbeddings(*peeled, txn->graph), ctx);
    EXPECT_GE(sub_support, super_support) << current.ToString();
    current = std::move(*peeled);
    super_support = sub_support;
  }

  // A sample covering the whole universe counts everything: byte-identical
  // to the unsampled query.
  TopKQuery oversampled = query;
  oversampled.txn_sample = 1000;  // >= 6 transactions
  Result<QueryResult> oversampled_result = session->RunQuery(oversampled);
  ASSERT_TRUE(oversampled_result.ok()) << oversampled_result.status();
  EXPECT_EQ(PatternsTranscript(oversampled_result->patterns),
            PatternsTranscript(full->patterns));
  EXPECT_EQ(oversampled_result->stats.txn_sample_size, 1000);

  // A genuine sample is deterministic (same seed, same whitelist) and
  // never reports more coverage than the full count for the same pattern.
  TopKQuery sampled = query;
  sampled.txn_sample = 3;
  Result<QueryResult> once = session->RunQuery(sampled);
  Result<QueryResult> twice = session->RunQuery(sampled);
  ASSERT_TRUE(once.ok()) << once.status();
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(PatternsTranscript(once->patterns),
            PatternsTranscript(twice->patterns));
  for (const MinedPattern& mp : once->patterns) {
    int64_t unsampled = ComputeSupport(
        SupportMeasureKind::kTransaction, mp.pattern,
        FindEmbeddings(mp.pattern, txn->graph), ctx);
    EXPECT_LE(mp.support, unsampled) << mp.pattern.ToString();
    EXPECT_LE(mp.support, 3);  // at most the sample size
  }

  // Sampling is a whitelist at the measure level too.
  std::vector<int32_t> whitelist{0, 2};
  SupportContext sampled_ctx = ctx;
  sampled_ctx.txn_sample = &whitelist;
  const Pattern& p0 = full->patterns.front().pattern;
  std::vector<Embedding> embeddings = FindEmbeddings(p0, txn->graph);
  EXPECT_LE(ComputeSupport(SupportMeasureKind::kTransaction, p0, embeddings,
                           sampled_ctx),
            std::min<int64_t>(
                2, ComputeSupport(SupportMeasureKind::kTransaction, p0,
                                  embeddings, ctx)));
}

}  // namespace
}  // namespace spidermine
