#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace spidermine {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard test vectors for the reflected IEEE polynomial (zlib crc32).
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  const std::string data = "spidermine-binary-format";
  for (size_t split = 0; split <= data.size(); ++split) {
    const std::string a = data.substr(0, split);
    const std::string b = data.substr(split);
    uint32_t crc = Crc32(a);
    crc = Crc32Extend(
        crc, {reinterpret_cast<const uint8_t*>(b.data()), b.size()});
    EXPECT_EQ(crc, Crc32(data)) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  std::vector<uint8_t> data(64, 0xAB);
  const uint32_t base = Crc32(data);
  for (size_t byte = 0; byte < data.size(); byte += 7) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<uint8_t> corrupted = data;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32(corrupted), base)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32Test, DifferentLengthsOfZerosDiffer) {
  std::vector<uint8_t> z1(1, 0), z2(2, 0), z8(8, 0);
  EXPECT_NE(Crc32(z1), Crc32(z2));
  EXPECT_NE(Crc32(z2), Crc32(z8));
}

}  // namespace
}  // namespace spidermine
