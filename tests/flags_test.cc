#include "common/flags.h"

#include <gtest/gtest.h>

namespace spidermine {
namespace {

FlagSet MakeSet() {
  FlagSet flags("tool", "test tool");
  flags.AddInt("count", 7, "a count")
      .AddDouble("rate", 0.5, "a rate")
      .AddString("name", "default", "a name")
      .AddBool("verbose", false, "chatty output");
  return flags;
}

TEST(FlagsTest, DefaultsWithoutArgs) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(flags.Parse(std::vector<std::string>{}).ok());
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.WasSet("count"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(flags
                  .Parse({"--count=42", "--rate=1.25", "--name=spider",
                          "--verbose=true"})
                  .ok());
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 1.25);
  EXPECT_EQ(flags.GetString("name"), "spider");
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_TRUE(flags.WasSet("count"));
}

TEST(FlagsTest, SpaceSeparatedValue) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(flags.Parse({"--count", "13", "--name", "x y"}).ok());
  EXPECT_EQ(flags.GetInt("count"), 13);
  EXPECT_EQ(flags.GetString("name"), "x y");
}

TEST(FlagsTest, BareBooleanSetsTrue) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(flags.Parse({"--verbose"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, BooleanFalseSpelling) {
  FlagSet flags("t");
  flags.AddBool("on", true, "");
  ASSERT_TRUE(flags.Parse({"--on=false"}).ok());
  EXPECT_FALSE(flags.GetBool("on"));
}

TEST(FlagsTest, PositionalArguments) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(flags.Parse({"mine", "--count=1", "input.graph"}).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "mine");
  EXPECT_EQ(flags.positional()[1], "input.graph");
}

TEST(FlagsTest, DoubleDashStopsFlagParsing) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(flags.Parse({"--count=1", "--", "--count=2"}).ok());
  EXPECT_EQ(flags.GetInt("count"), 1);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--count=2");
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags = MakeSet();
  Status status = flags.Parse({"--bogus=1"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
}

TEST(FlagsTest, MalformedIntFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(flags.Parse({"--count=12x"}).ok());
  FlagSet flags2 = MakeSet();
  EXPECT_FALSE(flags2.Parse({"--count="}).ok());
}

TEST(FlagsTest, MalformedDoubleFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(flags.Parse({"--rate=fast"}).ok());
}

TEST(FlagsTest, MalformedBoolFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(flags.Parse({"--verbose=maybe"}).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(flags.Parse({"--count"}).ok());
}

TEST(FlagsTest, RepeatedFlagFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(flags.Parse({"--count=1", "--count=2"}).ok());
}

TEST(FlagsTest, NegativeNumbers) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(flags.Parse({"--count=-5", "--rate=-0.25"}).ok());
  EXPECT_EQ(flags.GetInt("count"), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), -0.25);
}

TEST(FlagsTest, ArgcArgvOverloadSkipsProgramName) {
  FlagSet flags = MakeSet();
  const char* argv[] = {"prog", "--count=3", "pos"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt("count"), 3);
  ASSERT_EQ(flags.positional().size(), 1u);
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagSet flags = MakeSet();
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("a count"), std::string::npos);
  EXPECT_NE(usage.find("tool"), std::string::npos);
}

}  // namespace
}  // namespace spidermine
