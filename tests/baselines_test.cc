#include <gtest/gtest.h>

#include "baselines/complete_miner.h"
#include "baselines/origami.h"
#include "baselines/seus.h"
#include "baselines/subdue.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "gen/transaction_gen.h"
#include "graph/graph_builder.h"

namespace spidermine {
namespace {

/// Three copies of the labeled triangle (0,1,2) -- a crisp repeated
/// substructure every baseline should notice.
LabeledGraph ThreeTriangles() {
  GraphBuilder b;
  for (int copy = 0; copy < 3; ++copy) {
    VertexId base = b.AddVertex(0);
    b.AddVertex(1);
    b.AddVertex(2);
    b.AddEdge(base, base + 1);
    b.AddEdge(base + 1, base + 2);
    b.AddEdge(base, base + 2);
  }
  return std::move(b.Build()).value();
}

// ---------------------------------------------------------------- SUBDUE

TEST(SubdueTest, FindsRepeatedTriangle) {
  LabeledGraph g = ThreeTriangles();
  SubdueConfig config;
  Result<SubdueResult> result = SubdueDiscover(g, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  // The best compressor should be the full triangle (3 instances).
  const SubduePattern& best = result->patterns.front();
  EXPECT_EQ(best.pattern.NumEdges(), 3);
  EXPECT_EQ(best.instances, 3);
  EXPECT_GT(best.value, 1.0) << "collapsing triangles must compress";
}

TEST(SubdueTest, ValuesSortedDescending) {
  LabeledGraph g = ThreeTriangles();
  Result<SubdueResult> result = SubdueDiscover(g, {});
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->patterns.size(); ++i) {
    EXPECT_GE(result->patterns[i - 1].value, result->patterns[i].value);
  }
}

TEST(SubdueTest, BeamWidthOneStillWorks) {
  LabeledGraph g = ThreeTriangles();
  SubdueConfig config;
  config.beam_width = 1;
  Result<SubdueResult> result = SubdueDiscover(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->patterns.empty());
}

TEST(SubdueTest, InvalidBeamRejected) {
  LabeledGraph g = ThreeTriangles();
  SubdueConfig config;
  config.beam_width = 0;
  EXPECT_FALSE(SubdueDiscover(g, config).ok());
}

TEST(SubdueTest, PrefersFrequentSmallOverRareLarge) {
  // The paper's observation: SUBDUE shifts toward small high-frequency
  // structures. Plant a frequent small pattern and a rare large one.
  Rng rng(12);
  GraphBuilder builder = GenerateErdosRenyi(400, 1.5, 25, &rng);
  Pattern small_frequent = RandomConnectedPattern(4, 0.0, 25, &rng);
  Pattern large_rare = RandomConnectedPattern(25, 0.1, 25, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(small_frequent, 20, &rng).ok());
  ASSERT_TRUE(injector.Inject(large_rare, 2, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();
  Result<SubdueResult> result = SubdueDiscover(g, {});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  EXPECT_LT(result->patterns.front().pattern.NumVertices(), 15)
      << "SUBDUE should favor the frequent small structure";
}

// ------------------------------------------------------------------ SEuS

TEST(SeusTest, FindsFrequentEdgesAndTriangles) {
  LabeledGraph g = ThreeTriangles();
  SeusConfig config;
  config.min_support = 3;
  Result<SeusResult> result = SeusDiscover(g, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  // All three edge kinds are frequent.
  int32_t edge_patterns = 0;
  for (const SeusPattern& p : result->patterns) {
    if (p.pattern.NumEdges() == 1) ++edge_patterns;
    EXPECT_GE(p.support, 3);
    EXPECT_GE(p.summary_estimate, p.support)
        << "summary estimate must upper-bound verified support";
  }
  EXPECT_EQ(edge_patterns, 3);
}

TEST(SeusTest, OutputLimitedToSmallStructures) {
  LabeledGraph g = ThreeTriangles();
  SeusConfig config;
  config.min_support = 2;
  config.max_candidate_edges = 3;
  Result<SeusResult> result = SeusDiscover(g, config);
  ASSERT_TRUE(result.ok());
  for (const SeusPattern& p : result->patterns) {
    EXPECT_LE(p.pattern.NumEdges(), 3)
        << "SEuS candidates are depth-limited";
  }
}

TEST(SeusTest, SummaryPrunesInfrequentLabelPairs) {
  // One rare edge kind (labels 8-9 appear once).
  GraphBuilder b;
  VertexId a = b.AddVertex(8);
  VertexId c = b.AddVertex(9);
  b.AddEdge(a, c);
  for (int copy = 0; copy < 3; ++copy) {
    VertexId u = b.AddVertex(0);
    VertexId v = b.AddVertex(1);
    b.AddEdge(u, v);
  }
  LabeledGraph g = std::move(b.Build()).value();
  SeusConfig config;
  config.min_support = 2;
  Result<SeusResult> result = SeusDiscover(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->candidates_pruned_by_summary, 0);
  for (const SeusPattern& p : result->patterns) {
    for (VertexId v = 0; v < p.pattern.NumVertices(); ++v) {
      EXPECT_LT(p.pattern.Label(v), 8);
    }
  }
}

TEST(SeusTest, InvalidConfigRejected) {
  LabeledGraph g = ThreeTriangles();
  SeusConfig config;
  config.min_support = 0;
  EXPECT_FALSE(SeusDiscover(g, config).ok());
}

// -------------------------------------------------------- Complete miner

TEST(CompleteMinerTest, ExactPatternCountOnTriangles) {
  LabeledGraph g = ThreeTriangles();
  CompleteMinerConfig config;
  config.min_support = 3;
  Result<CompleteMineResult> result = MineComplete(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->aborted);
  // Connected patterns on labels {0,1,2} with >= 1 edge inside a triangle:
  // 3 single edges + 3 two-edge paths + 1 triangle = 7.
  EXPECT_EQ(result->patterns.size(), 7u);
  for (const CompletePattern& p : result->patterns) {
    EXPECT_EQ(p.support, 3);
  }
}

TEST(CompleteMinerTest, SupportThresholdPrunes) {
  LabeledGraph g = ThreeTriangles();
  CompleteMinerConfig config;
  config.min_support = 4;
  Result<CompleteMineResult> result = MineComplete(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());
}

TEST(CompleteMinerTest, MaxPatternEdgesTruncatesDepth) {
  LabeledGraph g = ThreeTriangles();
  CompleteMinerConfig config;
  config.min_support = 3;
  config.max_pattern_edges = 1;
  Result<CompleteMineResult> result = MineComplete(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->patterns.size(), 3u);  // just the edges
}

TEST(CompleteMinerTest, BudgetAbortReported) {
  Rng rng(5);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(300, 4.0, 3, &rng).Build()).value();
  CompleteMinerConfig config;
  config.min_support = 2;
  config.max_patterns = 50;
  Result<CompleteMineResult> result = MineComplete(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->aborted);
  EXPECT_GE(static_cast<int64_t>(result->patterns.size()), 50);
}

TEST(CompleteMinerTest, ContainsSpiderMineTopPattern) {
  // On a graph small enough for completeness, the complete set must
  // contain every pattern SpiderMine can return (sanity cross-check used
  // by the integration suite at larger scale).
  LabeledGraph g = ThreeTriangles();
  CompleteMinerConfig config;
  config.min_support = 3;
  Result<CompleteMineResult> result = MineComplete(g, config);
  ASSERT_TRUE(result.ok());
  int32_t max_edges = 0;
  for (const CompletePattern& p : result->patterns) {
    max_edges = std::max(max_edges, p.pattern.NumEdges());
  }
  EXPECT_EQ(max_edges, 3);
}

TEST(CompleteMinerTest, InvalidConfigRejected) {
  LabeledGraph g = ThreeTriangles();
  CompleteMinerConfig config;
  config.min_support = 0;
  EXPECT_FALSE(MineComplete(g, config).ok());
}

// ---------------------------------------------------------------- ORIGAMI

TEST(OrigamiTest, SamplesMaximalFrequentPatterns) {
  TransactionDatasetConfig gen_config;
  gen_config.num_graphs = 5;
  gen_config.vertices_per_graph = 50;
  gen_config.avg_degree = 2.0;
  gen_config.num_labels = 8;
  gen_config.num_large = 1;
  gen_config.large_vertices = 8;
  gen_config.large_txn_support = 4;
  gen_config.seed = 21;
  Result<TransactionDataset> data = GenerateTransactionDataset(gen_config);
  ASSERT_TRUE(data.ok());
  Result<TransactionGraph> txn = BuildTransactionGraph(data->database);
  ASSERT_TRUE(txn.ok());
  OrigamiConfig config;
  config.min_support = 3;
  config.num_samples = 100;
  Result<OrigamiResult> result = OrigamiMine(*txn, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->sampled.empty());
  EXPECT_FALSE(result->representatives.empty());
  for (const OrigamiPattern& p : result->sampled) {
    EXPECT_GE(p.support, 3);
  }
}

TEST(OrigamiTest, RepresentativesAreOrthogonal) {
  TransactionDatasetConfig gen_config;
  gen_config.num_graphs = 5;
  gen_config.vertices_per_graph = 50;
  gen_config.avg_degree = 2.5;
  gen_config.num_labels = 6;
  gen_config.num_large = 2;
  gen_config.large_vertices = 6;
  gen_config.large_txn_support = 3;
  gen_config.seed = 22;
  Result<TransactionDataset> data = GenerateTransactionDataset(gen_config);
  ASSERT_TRUE(data.ok());
  Result<TransactionGraph> txn = BuildTransactionGraph(data->database);
  ASSERT_TRUE(txn.ok());
  OrigamiConfig config;
  config.min_support = 2;
  config.num_samples = 60;
  config.max_representatives = 5;
  Result<OrigamiResult> result = OrigamiMine(*txn, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->representatives.size(), 5u);
  EXPECT_LE(result->representatives.size(), result->sampled.size());
}

TEST(OrigamiTest, DeterministicForSeed) {
  TransactionDatasetConfig gen_config;
  gen_config.num_graphs = 4;
  gen_config.vertices_per_graph = 40;
  gen_config.num_labels = 6;
  gen_config.num_large = 1;
  gen_config.large_vertices = 6;
  gen_config.large_txn_support = 3;
  gen_config.seed = 23;
  Result<TransactionDataset> data = GenerateTransactionDataset(gen_config);
  ASSERT_TRUE(data.ok());
  Result<TransactionGraph> txn = BuildTransactionGraph(data->database);
  ASSERT_TRUE(txn.ok());
  OrigamiConfig config;
  config.min_support = 2;
  config.num_samples = 30;
  Result<OrigamiResult> a = OrigamiMine(*txn, config);
  Result<OrigamiResult> b = OrigamiMine(*txn, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sampled.size(), b->sampled.size());
  EXPECT_EQ(a->representatives.size(), b->representatives.size());
}

TEST(OrigamiTest, InvalidConfigRejected) {
  TransactionGraph txn;
  OrigamiConfig config;
  config.min_support = 0;
  EXPECT_FALSE(OrigamiMine(txn, config).ok());
}

}  // namespace
}  // namespace spidermine
