#include "spidermine/session.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/vf2.h"
#include "spider_test_util.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

/// The MiningSession contract: Stage I runs exactly once per session, every
/// query against the cached store is byte-identical to a standalone Mine()
/// with the same parameters (at any thread count), and a bad query returns
/// an error without invalidating the session.

namespace spidermine {
namespace {

LabeledGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.0, 14, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.15, 14, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

SessionConfig BaseSessionConfig() {
  SessionConfig config;
  config.min_support = 3;
  return config;
}

TopKQuery BaseQuery(uint64_t rng_seed) {
  TopKQuery query;
  query.k = 8;
  query.dmax = 4;
  query.vmin = 8;
  query.rng_seed = rng_seed;
  query.seed_count_override = 10;
  return query;
}

/// The legacy fused config equivalent to BaseSessionConfig + BaseQuery.
MineConfig EquivalentMineConfig(uint64_t rng_seed) {
  MineConfig config;
  config.min_support = 3;
  config.k = 8;
  config.dmax = 4;
  config.vmin = 8;
  config.rng_seed = rng_seed;
  config.seed_count_override = 10;
  return config;
}

TEST(SessionTest, NQueriesMatchNIndependentMinesAtOneAndEightThreads) {
  LabeledGraph g = TestGraph(11);
  const std::vector<uint64_t> seeds = {7, 8, 9, 1234};
  for (int32_t threads : {1, 8}) {
    SessionConfig session_config = BaseSessionConfig();
    session_config.num_threads = threads;
    Result<MiningSession> session =
        MiningSession::Create(&g, session_config);
    ASSERT_TRUE(session.ok()) << session.status();
    for (uint64_t seed : seeds) {
      Result<QueryResult> query_result =
          session->RunQuery(BaseQuery(seed));
      ASSERT_TRUE(query_result.ok()) << query_result.status();
      MineConfig mine_config = EquivalentMineConfig(seed);
      mine_config.num_threads = threads;
      Result<MineResult> standalone = SpiderMiner(&g, mine_config).Mine();
      ASSERT_TRUE(standalone.ok()) << standalone.status();
      EXPECT_FALSE(standalone->patterns.empty());
      EXPECT_EQ(PatternsTranscript(query_result->patterns),
                PatternsTranscript(standalone->patterns))
          << "session query diverged from standalone Mine() at seed="
          << seed << " threads=" << threads;
      EXPECT_EQ(query_result->stats.growth_steps,
                standalone->stats.growth_steps);
      EXPECT_EQ(query_result->stats.merges, standalone->stats.merges);
    }
    EXPECT_EQ(session->queries_run(),
              static_cast<int64_t>(seeds.size()));
  }
}

TEST(SessionTest, StageOneRunsExactlyOncePerSession) {
  LabeledGraph g = TestGraph(22);
  Result<MiningSession> session =
      MiningSession::Create(&g, BaseSessionConfig());
  ASSERT_TRUE(session.ok()) << session.status();
  // Stage I work happened at construction...
  EXPECT_GT(session->stage1_stats().num_spiders, 0);
  EXPECT_GT(session->stage1_stats().stage1_steps, 0);
  EXPECT_GT(session->stage1_stats().stage1_scan_shards, 0);
  const int64_t spiders = session->store().size();
  // ...and never again: every query's stats carry zero Stage I counters
  // and the cached store is untouched.
  for (uint64_t seed : {1, 2, 3}) {
    Result<QueryResult> result = session->RunQuery(BaseQuery(seed));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->stats.stage1_steps, 0);
    EXPECT_EQ(result->stats.num_spiders, 0);
    EXPECT_EQ(result->stats.stage1_scan_shards, 0);
    EXPECT_GT(result->stats.growth_steps, 0);
    EXPECT_EQ(session->store().size(), spiders);
  }
}

TEST(SessionTest, RepeatedIdenticalQueriesAreByteIdentical) {
  LabeledGraph g = TestGraph(33);
  Result<MiningSession> session =
      MiningSession::Create(&g, BaseSessionConfig());
  ASSERT_TRUE(session.ok()) << session.status();
  Result<QueryResult> first = session->RunQuery(BaseQuery(5));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->patterns.empty());
  for (int i = 0; i < 3; ++i) {
    Result<QueryResult> again = session->RunQuery(BaseQuery(5));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(PatternsTranscript(again->patterns),
              PatternsTranscript(first->patterns));
  }
}

TEST(SessionTest, QueriesVaryKnobsWithoutRemining) {
  // The serving scenario: one session, queries sweeping k / support /
  // restarts / dmax. All must succeed against the one cached store.
  LabeledGraph g = TestGraph(44);
  Result<MiningSession> session =
      MiningSession::Create(&g, BaseSessionConfig());
  ASSERT_TRUE(session.ok()) << session.status();

  TopKQuery query = BaseQuery(7);
  query.k = 2;
  Result<QueryResult> small_k = session->RunQuery(query);
  ASSERT_TRUE(small_k.ok());
  EXPECT_LE(small_k->patterns.size(), 2u);

  query = BaseQuery(7);
  query.min_support = 4;  // above the mined floor: allowed
  Result<QueryResult> high_support = session->RunQuery(query);
  ASSERT_TRUE(high_support.ok());
  for (const MinedPattern& p : high_support->patterns) {
    EXPECT_GE(p.support, 4);
  }

  query = BaseQuery(7);
  query.restarts = 3;
  Result<QueryResult> restarted = session->RunQuery(query);
  ASSERT_TRUE(restarted.ok());
  EXPECT_EQ(restarted->stats.stage2_iterations, 3 * 2);  // dmax/(2r) = 2

  query = BaseQuery(7);
  query.dmax = 6;
  EXPECT_TRUE(session->RunQuery(query).ok());
}

TEST(SessionTest, BadQueryNeverInvalidatesTheSession) {
  LabeledGraph g = TestGraph(55);
  Result<MiningSession> session =
      MiningSession::Create(&g, BaseSessionConfig());
  ASSERT_TRUE(session.ok()) << session.status();
  Result<QueryResult> reference = session->RunQuery(BaseQuery(5));
  ASSERT_TRUE(reference.ok());

  TopKQuery bad = BaseQuery(5);
  bad.k = 0;
  EXPECT_FALSE(session->RunQuery(bad).ok());
  bad = BaseQuery(5);
  bad.dmax = 0;
  EXPECT_FALSE(session->RunQuery(bad).ok());
  bad = BaseQuery(5);
  bad.epsilon = 2.0;
  EXPECT_FALSE(session->RunQuery(bad).ok());
  bad = BaseQuery(5);
  bad.min_support = 2;  // below the mined floor of 3
  Result<QueryResult> below_floor = session->RunQuery(bad);
  ASSERT_FALSE(below_floor.ok());
  EXPECT_EQ(below_floor.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(below_floor.status().message().find("floor"),
            std::string::npos);
  bad = BaseQuery(5);
  bad.support_measure = SupportMeasureKind::kTransaction;  // no txn map
  EXPECT_FALSE(session->RunQuery(bad).ok());

  // Failed queries counted nothing and changed nothing: the next good
  // query is byte-identical to the first.
  EXPECT_EQ(session->queries_run(), 1);
  Result<QueryResult> after = session->RunQuery(BaseQuery(5));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(PatternsTranscript(after->patterns),
            PatternsTranscript(reference->patterns));
}

TEST(SessionTest, MinSupportZeroMeansSessionFloor) {
  LabeledGraph g = TestGraph(66);
  Result<MiningSession> session =
      MiningSession::Create(&g, BaseSessionConfig());
  ASSERT_TRUE(session.ok()) << session.status();
  TopKQuery query = BaseQuery(5);
  query.min_support = 0;
  Result<QueryResult> defaulted = session->RunQuery(query);
  query.min_support = 3;  // the explicit floor
  Result<QueryResult> explicit_floor = session->RunQuery(query);
  ASSERT_TRUE(defaulted.ok());
  ASSERT_TRUE(explicit_floor.ok());
  EXPECT_EQ(PatternsTranscript(defaulted->patterns),
            PatternsTranscript(explicit_floor->patterns));
}

TEST(SessionTest, InvalidSessionConfigRejected) {
  LabeledGraph g = TestGraph(77);
  SessionConfig config = BaseSessionConfig();
  config.min_support = 0;
  EXPECT_FALSE(MiningSession::Create(&g, config).ok());
  config = BaseSessionConfig();
  config.spider_radius = 3;
  EXPECT_FALSE(MiningSession::Create(&g, config).ok());
  config = BaseSessionConfig();
  config.num_threads = -1;
  EXPECT_FALSE(MiningSession::Create(&g, config).ok());
  config = BaseSessionConfig();
  config.stage1_shard_grain = -5;
  EXPECT_FALSE(MiningSession::Create(&g, config).ok());
}

TEST(SessionTest, EmptyGraphSessionServesEmptyQueries) {
  LabeledGraph g = std::move(GraphBuilder().Build()).value();
  Result<MiningSession> session =
      MiningSession::Create(&g, BaseSessionConfig());
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE(session->store().empty());
  Result<QueryResult> result = session->RunQuery(BaseQuery(1));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());
}

TEST(SessionTest, AccumulateTopKDedupsAcrossQueries) {
  // Cross-query accumulation: the same pattern recovered by every run must
  // occupy ONE slot (best support kept), and the list stays in the
  // engine's size order under the cap.
  LabeledGraph g = TestGraph(99);
  Result<MiningSession> session =
      MiningSession::Create(&g, BaseSessionConfig());
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<MinedPattern> accumulated;
  for (uint64_t seed : {5, 6, 5}) {  // seed 5 twice: identical results
    Result<QueryResult> result = session->RunQuery(BaseQuery(seed));
    ASSERT_TRUE(result.ok());
    AccumulateTopK(&accumulated, std::move(result->patterns), /*k=*/8);
  }
  ASSERT_FALSE(accumulated.empty());
  EXPECT_LE(accumulated.size(), 8u);
  for (size_t i = 1; i < accumulated.size(); ++i) {
    EXPECT_GE(accumulated[i - 1].NumEdges(), accumulated[i].NumEdges());
  }
  // No two accumulated patterns are isomorphic.
  for (size_t i = 0; i < accumulated.size(); ++i) {
    for (size_t j = i + 1; j < accumulated.size(); ++j) {
      if (accumulated[i].NumEdges() != accumulated[j].NumEdges() ||
          accumulated[i].NumVertices() != accumulated[j].NumVertices()) {
        continue;
      }
      EXPECT_FALSE(ArePatternsIsomorphic(accumulated[i].pattern,
                                         accumulated[j].pattern))
          << "duplicate pattern survived accumulation at " << i << "," << j;
    }
  }
}

TEST(SessionTest, CanonicalHashNormalizesDefaultedFields) {
  // The hash keys the serving result cache, so every defaulted field must
  // collapse onto its explicit resolution — exactly how RunQuery resolves
  // it — and fields that cannot change the result must not split lines.
  const int64_t floor = 3;
  const int64_t vertices = 200;

  // min_support: 0 and the explicit session floor are the same query.
  TopKQuery defaulted = BaseQuery(5);
  defaulted.min_support = 0;
  TopKQuery explicit_floor = BaseQuery(5);
  explicit_floor.min_support = floor;
  EXPECT_EQ(defaulted.CanonicalHash(floor, vertices),
            explicit_floor.CanonicalHash(floor, vertices));
  // ...but only under the same session floor.
  EXPECT_NE(defaulted.CanonicalHash(floor, vertices),
            defaulted.CanonicalHash(floor + 1, vertices));

  // vmin: 0 resolves to max(1, |V|/10), clamped to |V|.
  TopKQuery auto_vmin = BaseQuery(5);
  auto_vmin.vmin = 0;
  TopKQuery resolved_vmin = BaseQuery(5);
  resolved_vmin.vmin = vertices / 10;
  EXPECT_EQ(auto_vmin.CanonicalHash(floor, vertices),
            resolved_vmin.CanonicalHash(floor, vertices));
  TopKQuery oversized_vmin = BaseQuery(5);
  oversized_vmin.vmin = vertices + 50;
  TopKQuery clamped_vmin = BaseQuery(5);
  clamped_vmin.vmin = vertices;
  EXPECT_EQ(oversized_vmin.CanonicalHash(floor, vertices),
            clamped_vmin.CanonicalHash(floor, vertices));

  // closure_window: 0 resolves to max(64, 8k).
  TopKQuery auto_window = BaseQuery(5);
  auto_window.closure_window = 0;
  TopKQuery resolved_window = BaseQuery(5);
  resolved_window.closure_window = 64;  // 8k = 64 for k = 8
  EXPECT_EQ(auto_window.CanonicalHash(floor, vertices),
            resolved_window.CanonicalHash(floor, vertices));

  // embedding_list_budget never affects the result bytes, so it must not
  // split the cache line either.
  TopKQuery unbudgeted = BaseQuery(5);
  TopKQuery budgeted = BaseQuery(5);
  budgeted.embedding_list_budget = 1 << 20;
  EXPECT_EQ(unbudgeted.CanonicalHash(floor, vertices),
            budgeted.CanonicalHash(floor, vertices));
}

TEST(SessionTest, CanonicalHashSeparatesDistinctQueries) {
  // Fields that change what RunQuery returns must change the hash; a
  // collision here would serve one query's cached patterns for another.
  const int64_t floor = 3;
  const int64_t vertices = 200;
  const uint64_t base = BaseQuery(5).CanonicalHash(floor, vertices);

  TopKQuery q = BaseQuery(5);
  q.k = 9;
  EXPECT_NE(q.CanonicalHash(floor, vertices), base);
  q = BaseQuery(5);
  q.rng_seed = 6;
  EXPECT_NE(q.CanonicalHash(floor, vertices), base);
  q = BaseQuery(5);
  q.dmax = 6;
  EXPECT_NE(q.CanonicalHash(floor, vertices), base);
  q = BaseQuery(5);
  q.support_measure = SupportMeasureKind::kMinImage;
  EXPECT_NE(q.CanonicalHash(floor, vertices), base);
  q = BaseQuery(5);
  q.support_measure = SupportMeasureKind::kHomomorphism;
  EXPECT_NE(q.CanonicalHash(floor, vertices), base);
  q = BaseQuery(5);
  q.support_measure = SupportMeasureKind::kTransaction;
  const uint64_t txn_base = q.CanonicalHash(floor, vertices);
  EXPECT_NE(txn_base, base);
  // Every measure hashes distinctly — one cache line per measure.
  q.support_measure = SupportMeasureKind::kHomomorphism;
  EXPECT_NE(q.CanonicalHash(floor, vertices), txn_base);
  // A sampled transaction query answers differently from the full count.
  q.support_measure = SupportMeasureKind::kTransaction;
  q.txn_sample = 4;
  EXPECT_NE(q.CanonicalHash(floor, vertices), txn_base);
  const uint64_t sampled = q.CanonicalHash(floor, vertices);
  q.txn_sample = 5;
  EXPECT_NE(q.CanonicalHash(floor, vertices), sampled);
  q = BaseQuery(5);
  q.time_budget_seconds = 1.0;  // budget-truncated results differ
  EXPECT_NE(q.CanonicalHash(floor, vertices), base);
  q = BaseQuery(5);
  q.restarts = 2;
  EXPECT_NE(q.CanonicalHash(floor, vertices), base);

  // Stability: the hash is a pure function of the resolved fields.
  EXPECT_EQ(BaseQuery(5).CanonicalHash(floor, vertices), base);
}

TEST(SessionTest, SessionSurvivesMove) {
  // MiningSession is returned by value through Result<>; the index's
  // back-pointer into the store must survive the moves.
  LabeledGraph g = TestGraph(88);
  Result<MiningSession> created =
      MiningSession::Create(&g, BaseSessionConfig());
  ASSERT_TRUE(created.ok());
  Result<QueryResult> before = created->RunQuery(BaseQuery(5));
  ASSERT_TRUE(before.ok());
  MiningSession moved = std::move(*created);
  EXPECT_EQ(&moved.index().store(), &moved.store());
  Result<QueryResult> after = moved.RunQuery(BaseQuery(5));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(PatternsTranscript(after->patterns),
            PatternsTranscript(before->patterns));
}

}  // namespace
}  // namespace spidermine
