#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/pattern_factory.h"
#include "pattern/dfs_code.h"
#include "pattern/spider_set.h"
#include "pattern/vf2.h"

namespace spidermine {
namespace {

Pattern Permuted(const Pattern& p, const std::vector<VertexId>& perm) {
  Pattern q;
  std::vector<LabelId> labels(perm.size());
  for (VertexId v = 0; v < p.NumVertices(); ++v) labels[perm[v]] = p.Label(v);
  for (LabelId l : labels) q.AddVertex(l);
  for (const auto& [u, v] : p.Edges()) q.AddEdge(perm[u], perm[v]);
  return q;
}

/// A big single-label pattern: triggers the symmetry gate in
/// CanonicalString (distinct (label, degree) signatures * 3 < n).
Pattern BigSymmetricPattern(int32_t n) {
  Pattern p;
  for (int32_t i = 0; i < n; ++i) p.AddVertex(0);
  for (int32_t i = 0; i < n; ++i) p.AddEdge(i, (i + 1) % n);  // cycle
  return p;
}

TEST(CanonicalFallbackTest, SymmetricPatternsUseWlKey) {
  Pattern cycle = BigSymmetricPattern(20);
  std::string key = CanonicalString(cycle);
  EXPECT_EQ(key.rfind("wl:", 0), 0u) << key;
}

TEST(CanonicalFallbackTest, DiversePatternsUseExactKey) {
  Pattern p;
  for (int i = 0; i < 16; ++i) p.AddVertex(i);  // all labels distinct
  for (int i = 0; i + 1 < 16; ++i) p.AddEdge(i, i + 1);
  std::string key = CanonicalString(p);
  EXPECT_NE(key.rfind("r", 0), std::string::npos);
  EXPECT_NE(key.substr(0, 3), "wl:");
}

TEST(CanonicalFallbackTest, WlKeyIsPermutationInvariant) {
  Rng rng(5);
  Pattern p = BigSymmetricPattern(24);
  std::string key = CanonicalString(p);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<VertexId> perm(p.NumVertices());
    for (VertexId v = 0; v < p.NumVertices(); ++v) perm[v] = v;
    rng.Shuffle(&perm);
    EXPECT_EQ(CanonicalString(Permuted(p, perm)), key);
  }
}

TEST(CanonicalFallbackTest, WlStringDistinguishesCycleLengths) {
  // WL separates cycles of different length (different n already).
  EXPECT_NE(WlRefinementString(BigSymmetricPattern(20)),
            WlRefinementString(BigSymmetricPattern(22)));
}

TEST(CanonicalFallbackTest, WlStringSeparatesTreesExactly) {
  // WL refinement is a complete invariant on trees: star vs path, same
  // label multiset and sizes.
  Pattern star;
  star.AddVertex(0);
  for (int i = 0; i < 5; ++i) {
    VertexId leaf = star.AddVertex(0);
    star.AddEdge(0, leaf);
  }
  Pattern path;
  for (int i = 0; i < 6; ++i) path.AddVertex(0);
  for (int i = 0; i + 1 < 6; ++i) path.AddEdge(i, i + 1);
  EXPECT_NE(WlRefinementString(star), WlRefinementString(path));
}

TEST(CanonicalFallbackTest, WlEqualForIsomorphicPairs) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Pattern p = RandomConnectedPattern(
        static_cast<int32_t>(rng.UniformInt(3, 20)), 0.3, 2, &rng);
    std::vector<VertexId> perm(p.NumVertices());
    for (VertexId v = 0; v < p.NumVertices(); ++v) perm[v] = v;
    rng.Shuffle(&perm);
    EXPECT_EQ(WlRefinementString(p), WlRefinementString(Permuted(p, perm)));
  }
}

TEST(CanonicalFallbackTest, BoundedSearchReportsExhaustion) {
  // A moderately symmetric pattern with a 1-step budget must give up.
  Pattern p = BigSymmetricPattern(10);
  DfsCode code;
  EXPECT_FALSE(MinimumDfsCodeBounded(p, 1, &code));
  // And with an ample budget it succeeds and matches the unbounded result.
  DfsCode full;
  EXPECT_TRUE(MinimumDfsCodeBounded(p, INT64_MAX, &full));
  EXPECT_EQ(CompareDfsCodes(full, MinimumDfsCode(p)), 0);
}

TEST(CanonicalFallbackTest, SpiderSetStableOnSymmetricPatterns) {
  // Spider-set codes route through CanonicalString; the gate must keep
  // them permutation-invariant even on dense single-label patterns.
  Rng rng(11);
  Pattern p = RandomConnectedPattern(30, 0.8, 1, &rng);
  std::vector<VertexId> perm(p.NumVertices());
  for (VertexId v = 0; v < p.NumVertices(); ++v) perm[v] = v;
  rng.Shuffle(&perm);
  EXPECT_TRUE(SpiderSetRepr::Compute(p, 1) ==
              SpiderSetRepr::Compute(Permuted(p, perm), 1));
}

TEST(CanonicalFallbackTest, CanonicalStringStillExactForSmallDense) {
  // n <= 12 always takes the exact path, even fully symmetric.
  Pattern k4;
  for (int i = 0; i < 4; ++i) k4.AddVertex(0);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) k4.AddEdge(i, j);
  }
  std::string key = CanonicalString(k4);
  EXPECT_EQ(key.substr(0, 1), "r");
}

}  // namespace
}  // namespace spidermine
