#include "tools/stage1_workers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "gen/barabasi_albert.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "spidermine/session.h"
#include "tools/cli_commands.h"

/// The multi-process Stage I driver, tested without fork where the logic
/// lives (scheduling, retry, validation — via an injected launcher running
/// RunCli in-process) and WITH fork where the mechanics live (ForkExecWorker
/// against /bin/sh: exit codes, signal deaths, exec failures, stderr
/// capture).

namespace spidermine {
namespace {

using cli::ForkExecWorker;
using cli::PartitionedStage1Options;
using cli::PartitionedStage1Stats;
using cli::ResolveWorkerBinary;
using cli::RunPartitionedStage1;
using cli::WorkerInvocation;
using cli::WorkerOutcome;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// A launcher that runs the worker's subcommand in THIS process via
/// RunCli — the full flag-parsing + mining + serialization path, no fork.
Result<WorkerOutcome> InProcessWorker(const WorkerInvocation& invocation) {
  const std::vector<std::string> args(invocation.argv.begin() + 1,
                                      invocation.argv.end());
  std::ostringstream out;
  std::ostringstream err;
  WorkerOutcome outcome;
  outcome.exit_code = cli::RunCli(args, out, err);
  outcome.stderr_output = err.str();
  return outcome;
}

/// A 2000-vertex BA graph on disk plus its single-process reference .sm2.
struct Fixture {
  std::string graph_path;
  std::string reference_bytes;
};

Fixture MakeFixture(const std::string& tag) {
  Fixture fx;
  Rng rng(97);
  GraphBuilder builder = GenerateBarabasiAlbert(2000, 2, 10, &rng);
  LabeledGraph graph = std::move(builder.Build()).value();
  fx.graph_path = TempPath(StrCat("stage1_workers_", tag, ".lg"));
  EXPECT_TRUE(SaveGraphText(graph, fx.graph_path).ok());
  SessionConfig config;
  config.min_support = 3;
  config.max_star_leaves = 4;
  Result<MiningSession> session = MiningSession::Create(&graph, config);
  EXPECT_TRUE(session.ok()) << session.status();
  const std::string single = TempPath(StrCat("stage1_workers_", tag,
                                             "_single.sm2"));
  EXPECT_TRUE(session->SaveStage1(single).ok());
  fx.reference_bytes = ReadAll(single);
  std::filesystem::remove(single);
  return fx;
}

PartitionedStage1Options BaseOptions() {
  PartitionedStage1Options options;
  options.num_workers = 2;
  options.num_partitions = 3;
  options.min_support = 3;
  options.max_star_leaves = 4;
  options.worker_binary = "spidermine-in-process";  // launcher ignores it
  return options;
}

TEST(Stage1WorkersTest, DriverProducesByteIdenticalArtifact) {
  const Fixture fx = MakeFixture("ident");
  const std::string out = TempPath("stage1_workers_ident.sm2");
  Result<PartitionedStage1Stats> stats = RunPartitionedStage1(
      fx.graph_path, out, BaseOptions(), InProcessWorker);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->num_partitions, 3);
  EXPECT_EQ(stats->worker_retries, 0);
  EXPECT_GT(stats->merged_spiders, 0);
  EXPECT_EQ(ReadAll(out), fx.reference_bytes);
  // Scratch files are cleaned up after a successful merge.
  EXPECT_FALSE(std::filesystem::exists(StrCat(out, ".parts")));
  std::filesystem::remove(out);
  std::filesystem::remove(fx.graph_path);
}

TEST(Stage1WorkersTest, FailedWorkerIsRetriedOnceThenSucceeds) {
  const Fixture fx = MakeFixture("retry");
  const std::string out = TempPath("stage1_workers_retry.sm2");
  std::atomic<int32_t> failures{0};
  auto flaky = [&](const WorkerInvocation& invocation)
      -> Result<WorkerOutcome> {
    if (invocation.partition_index == 1 &&
        failures.fetch_add(1) == 0) {
      WorkerOutcome outcome;
      outcome.exit_code = 9;
      outcome.stderr_output = "transient boom\n";
      return outcome;
    }
    return InProcessWorker(invocation);
  };
  Result<PartitionedStage1Stats> stats =
      RunPartitionedStage1(fx.graph_path, out, BaseOptions(), flaky);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->worker_retries, 1);
  EXPECT_EQ(ReadAll(out), fx.reference_bytes);
  std::filesystem::remove(out);
  std::filesystem::remove(fx.graph_path);
}

TEST(Stage1WorkersTest, PersistentFailureSurfacesStderrAndPartition) {
  const Fixture fx = MakeFixture("fail");
  const std::string out = TempPath("stage1_workers_fail.sm2");
  std::atomic<int32_t> attempts{0};
  auto broken = [&](const WorkerInvocation& invocation)
      -> Result<WorkerOutcome> {
    if (invocation.partition_index == 2) {
      attempts.fetch_add(1);
      WorkerOutcome outcome;
      outcome.exit_code = 7;
      outcome.stderr_output = "disk on fire\n";
      return outcome;
    }
    return InProcessWorker(invocation);
  };
  Result<PartitionedStage1Stats> stats =
      RunPartitionedStage1(fx.graph_path, out, BaseOptions(), broken);
  ASSERT_FALSE(stats.ok());
  // One deterministic retry: exactly two attempts, then the error carries
  // the partition index, the exit code and the captured stderr.
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_NE(stats.status().message().find("partition 2"),
            std::string::npos)
      << stats.status();
  EXPECT_NE(stats.status().message().find("exited with code 7"),
            std::string::npos)
      << stats.status();
  EXPECT_NE(stats.status().message().find("disk on fire"),
            std::string::npos)
      << stats.status();
  std::filesystem::remove(fx.graph_path);
}

TEST(Stage1WorkersTest, TruncatedPartialIsDetectedAndRetried) {
  const Fixture fx = MakeFixture("trunc");
  const std::string out = TempPath("stage1_workers_trunc.sm2");
  std::atomic<int32_t> truncations{0};
  // First attempt for partition 0 does the real work, then truncates its
  // own output — the exit-0-but-corrupt shape of a worker killed (or a
  // disk filled) between write and close.
  auto truncating = [&](const WorkerInvocation& invocation)
      -> Result<WorkerOutcome> {
    Result<WorkerOutcome> outcome = InProcessWorker(invocation);
    if (invocation.partition_index == 0 &&
        truncations.fetch_add(1) == 0 && outcome.ok() &&
        outcome->exit_code == 0) {
      const std::string& partial =
          invocation.argv.back().substr(6);  // strip "--out="
      std::string bytes = ReadAll(partial);
      std::ofstream rewrite(partial,
                            std::ios::binary | std::ios::trunc);
      rewrite.write(bytes.data(),
                    static_cast<std::streamsize>(bytes.size() / 2));
    }
    return outcome;
  };
  Result<PartitionedStage1Stats> stats =
      RunPartitionedStage1(fx.graph_path, out, BaseOptions(), truncating);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->worker_retries, 1);
  EXPECT_EQ(ReadAll(out), fx.reference_bytes);
  std::filesystem::remove(out);
  std::filesystem::remove(fx.graph_path);
}

TEST(Stage1WorkersTest, ForkExecCapturesExitCodesSignalsAndStderr) {
  // Real fork/exec against /bin/sh: nonzero exit + stderr capture.
  WorkerInvocation fail;
  fail.argv = {"/bin/sh", "-c", "echo nope >&2; exit 3"};
  Result<WorkerOutcome> outcome = ForkExecWorker(fail);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->exit_code, 3);
  EXPECT_NE(outcome->stderr_output.find("nope"), std::string::npos);

  // Worker stdout is captured too (it must not leak into the parent's).
  WorkerInvocation chatty;
  chatty.argv = {"/bin/sh", "-c", "echo progress; exit 0"};
  outcome = ForkExecWorker(chatty);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->exit_code, 0);
  EXPECT_NE(outcome->stderr_output.find("progress"), std::string::npos);

  // A signal death reports 128 + signo, shell-style.
  WorkerInvocation killed;
  killed.argv = {"/bin/sh", "-c", "kill -9 $$"};
  outcome = ForkExecWorker(killed);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->exit_code, 137);

  // A nonexistent binary reports 127 with the path in the message.
  WorkerInvocation missing;
  missing.argv = {"/nonexistent/spidermine-worker", "stage1-part"};
  outcome = ForkExecWorker(missing);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->exit_code, 127);
  EXPECT_NE(outcome->stderr_output.find("/nonexistent/spidermine-worker"),
            std::string::npos);
}

TEST(Stage1WorkersTest, ResolveWorkerBinaryFallbackChain) {
  // Explicit flag wins.
  Result<std::string> flagged = ResolveWorkerBinary("/usr/bin/true");
  ASSERT_TRUE(flagged.ok());
  EXPECT_EQ(*flagged, "/usr/bin/true");
  // Then the environment override.
  ::setenv("SPIDERMINE_CLI_BIN", "/tmp/spidermine-env", 1);
  Result<std::string> from_env = ResolveWorkerBinary("");
  ::unsetenv("SPIDERMINE_CLI_BIN");
  ASSERT_TRUE(from_env.ok());
  EXPECT_EQ(*from_env, "/tmp/spidermine-env");
  // Then /proc/self/exe (this test binary).
  Result<std::string> self = ResolveWorkerBinary("");
  ASSERT_TRUE(self.ok());
  EXPECT_NE(self->find("stage1_workers_test"), std::string::npos);
}

TEST(Stage1WorkersTest, CliRejectsIncoherentWorkerFlags) {
  std::ostringstream out;
  std::ostringstream err;
  // --time-budget is incompatible with --workers (checked before any IO).
  EXPECT_EQ(cli::RunCli({"stage1", "missing.lg", "--workers=2",
                         "--time-budget=5", "--out=x.sm2"},
                        out, err),
            1);
  EXPECT_NE(err.str().find("--time-budget"), std::string::npos);
  // Worker-mode flags without --workers are rejected, not ignored.
  err.str("");
  EXPECT_EQ(cli::RunCli({"stage1", "missing.lg", "--partitions=4",
                         "--out=x.sm2"},
                        out, err),
            1);
  EXPECT_NE(err.str().find("--workers"), std::string::npos);
  err.str("");
  EXPECT_EQ(cli::RunCli({"stage1", "missing.lg", "--workers=-1",
                         "--out=x.sm2"},
                        out, err),
            1);
}

}  // namespace
}  // namespace spidermine
