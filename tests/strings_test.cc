#include "common/strings.h"

#include <gtest/gtest.h>

namespace spidermine {
namespace {

TEST(StringsTest, StrCatConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat(42), "42");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("nosep", ','), (std::vector<std::string>{"nosep"}));
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x  "), "x");
  EXPECT_EQ(StripAsciiWhitespace("\t\r\n a b \v\f"), "a b");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("clean"), "clean");
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace spidermine
