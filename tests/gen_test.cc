#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/barabasi_albert.h"
#include "gen/callgraph_sim.h"
#include "gen/dblp_sim.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/paper_datasets.h"
#include "gen/pattern_factory.h"
#include "gen/transaction_gen.h"
#include "graph/degree_stats.h"
#include "pattern/vf2.h"
#include "support/support_measure.h"

namespace spidermine {
namespace {

TEST(ErdosRenyiTest, HitsTargetEdgeCountAndLabels) {
  Rng rng(1);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(500, 4.0, 10, &rng).Build()).value();
  EXPECT_EQ(g.NumVertices(), 500);
  EXPECT_EQ(g.NumEdges(), 1000);  // n*d/2
  EXPECT_LE(g.NumLabels(), 10);
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_NEAR(stats.average, 4.0, 0.01);
}

TEST(ErdosRenyiTest, TinyGraphsClampEdges) {
  Rng rng(2);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(3, 10.0, 2, &rng).Build()).value();
  EXPECT_LE(g.NumEdges(), 3);  // max possible for n=3
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  Rng rng1(7);
  Rng rng2(7);
  LabeledGraph a =
      std::move(GenerateErdosRenyi(100, 3.0, 5, &rng1).Build()).value();
  LabeledGraph b =
      std::move(GenerateErdosRenyi(100, 3.0, 5, &rng2).Build()).value();
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.Label(v), b.Label(v));
  }
}

TEST(BarabasiAlbertTest, ProducesSkewedDegrees) {
  Rng rng(3);
  LabeledGraph g =
      std::move(GenerateBarabasiAlbert(1000, 2, 10, &rng).Build()).value();
  EXPECT_EQ(g.NumVertices(), 1000);
  DegreeStats stats = ComputeDegreeStats(g);
  // Preferential attachment: hub degree far above the average.
  EXPECT_GT(stats.max, static_cast<int64_t>(stats.average * 5));
}

TEST(BarabasiAlbertTest, EveryLateVertexHasEdges) {
  Rng rng(4);
  LabeledGraph g =
      std::move(GenerateBarabasiAlbert(200, 3, 5, &rng).Build()).value();
  for (VertexId v = 10; v < g.NumVertices(); ++v) {
    EXPECT_GE(g.Degree(v), 1);
  }
}

TEST(PatternFactoryTest, ConnectedWithRequestedSize) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Pattern p = RandomConnectedPattern(15, 0.2, 6, &rng);
    EXPECT_EQ(p.NumVertices(), 15);
    EXPECT_TRUE(p.IsConnected());
    EXPECT_GE(p.NumEdges(), 14);  // spanning tree at minimum
    for (VertexId v = 0; v < p.NumVertices(); ++v) {
      EXPECT_LT(p.Label(v), 6);
    }
  }
}

TEST(PatternFactoryTest, DiameterBoundHolds) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Pattern p = RandomPatternWithDiameter(20, 4, 5, &rng);
    EXPECT_LE(p.Diameter(), 4);
    EXPECT_TRUE(p.IsConnected());
  }
}

TEST(InjectionTest, PlantedPatternIsEmbeddedDisjointly) {
  Rng rng(8);
  GraphBuilder builder = GenerateErdosRenyi(300, 2.0, 8, &rng);
  Pattern planted = RandomConnectedPattern(8, 0.2, 8, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 4, &rng).ok());
  EXPECT_EQ(injector.NumClaimedVertices(), 32);
  LabeledGraph g = std::move(builder.Build()).value();
  Vf2Options options;
  options.max_embeddings = 5000;
  std::vector<Embedding> embeddings = FindEmbeddings(planted, g, options);
  DedupEmbeddingsByImage(&embeddings);
  // 4 vertex-disjoint embeddings exist by construction, so the exact MIS
  // support is >= 4; the greedy approximation may lose one to an
  // unfortunate pick order but can never lose more than half.
  EXPECT_GE(static_cast<int64_t>(embeddings.size()), 4);
  int64_t support = ComputeSupport(SupportMeasureKind::kGreedyMisVertex,
                                   planted, embeddings);
  EXPECT_GE(support, 3);
}

TEST(InjectionTest, FailsWhenGraphTooSmall) {
  Rng rng(9);
  GraphBuilder builder = GenerateErdosRenyi(10, 1.0, 2, &rng);
  Pattern planted = RandomConnectedPattern(8, 0.0, 2, &rng);
  PatternInjector injector(&builder);
  Status status = injector.Inject(planted, 2, &rng);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(PaperDatasetsTest, Table1SpecsMatchPaper) {
  GidSpec g1 = Table1Spec(1);
  EXPECT_EQ(g1.num_vertices, 400);
  EXPECT_EQ(g1.num_labels, 70);
  EXPECT_EQ(g1.avg_degree, 2);
  EXPECT_EQ(g1.num_large, 5);
  EXPECT_EQ(g1.large_vertices, 30);
  EXPECT_EQ(g1.num_small, 5);
  GidSpec g5 = Table1Spec(5);
  EXPECT_EQ(g5.num_vertices, 600);
  EXPECT_EQ(g5.num_labels, 130);
  EXPECT_EQ(g5.num_small, 20);
  EXPECT_EQ(Table1Spec(6).gid, 0);
}

TEST(PaperDatasetsTest, Table3SpecsMatchPaper) {
  GidSpec g6 = Table3Spec(6);
  EXPECT_EQ(g6.num_vertices, 20490);
  EXPECT_EQ(g6.num_labels, 1064);
  EXPECT_EQ(g6.large_vertices, 50);
  EXPECT_EQ(g6.num_small, 50);
  EXPECT_EQ(g6.small_support_lo, 5);
  GidSpec g10 = Table3Spec(10);
  EXPECT_EQ(g10.num_vertices, 56740);
  EXPECT_EQ(g10.small_support_hi, 35);
}

TEST(PaperDatasetsTest, BuildGid1HasGroundTruth) {
  Result<PaperDataset> data = BuildGidDataset(1, /*seed=*/42);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graph.NumVertices(), 400);
  EXPECT_EQ(data->large_patterns.size(), 5u);
  EXPECT_EQ(data->small_patterns.size(), 5u);
  for (const Pattern& p : data->large_patterns) {
    EXPECT_EQ(p.NumVertices(), 30);
    EXPECT_TRUE(ContainsEmbedding(p, data->graph));
  }
}

TEST(PaperDatasetsTest, InvalidGidRejected) {
  EXPECT_FALSE(BuildGidDataset(0, 1).ok());
  EXPECT_FALSE(BuildGidDataset(11, 1).ok());
}

TEST(TransactionGenTest, DatabaseShapeMatchesConfig) {
  TransactionDatasetConfig config;
  config.num_graphs = 4;
  config.vertices_per_graph = 80;
  config.avg_degree = 3.0;
  config.num_labels = 10;
  config.num_large = 2;
  config.large_vertices = 8;
  config.large_txn_support = 3;
  Result<TransactionDataset> data = GenerateTransactionDataset(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->database.size(), 4u);
  for (const LabeledGraph& g : data->database) {
    EXPECT_EQ(g.NumVertices(), 80);
  }
  EXPECT_EQ(data->large_patterns.size(), 2u);
  // Each large pattern embeds in at least large_txn_support transactions.
  for (const Pattern& p : data->large_patterns) {
    int32_t hits = 0;
    for (const LabeledGraph& g : data->database) {
      if (ContainsEmbedding(p, g)) ++hits;
    }
    EXPECT_GE(hits, 3);
  }
}

TEST(DblpSimTest, MatchesPaperScale) {
  DblpSimConfig config;
  Result<DblpDataset> data = GenerateDblpSim(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graph.NumVertices(), 6508);
  // Edge total: target plus planted pattern edges, within a small margin.
  EXPECT_GE(data->graph.NumEdges(), 24000);
  EXPECT_LE(data->graph.NumEdges(), 27000);
  EXPECT_LE(data->graph.NumLabels(), 4);
  // Label skew: beginners outnumber prolific authors.
  std::vector<int64_t> hist = LabelHistogram(data->graph);
  EXPECT_GT(hist[kBeginner], hist[kProlific] * 5);
}

TEST(DblpSimTest, PlantedPatternsRecoverable) {
  DblpSimConfig config;
  config.num_authors = 2000;
  config.target_edges = 7000;
  config.num_communities = 80;
  Result<DblpDataset> data = GenerateDblpSim(config);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(ContainsEmbedding(data->common_pattern, data->graph));
  for (const Pattern& p : data->cluster_patterns) {
    EXPECT_TRUE(ContainsEmbedding(p, data->graph));
  }
}

TEST(CallGraphSimTest, MatchesJetiStatistics) {
  CallGraphSimConfig config;
  Result<CallGraphDataset> data = GenerateCallGraphSim(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graph.NumVertices(), 835);
  EXPECT_GE(data->graph.NumEdges(), 1700);
  EXPECT_LE(data->graph.NumEdges(), 2100);
  DegreeStats stats = ComputeDegreeStats(data->graph);
  // Paper: avg degree 2.13 (edge-count sense: 2m/n ~ 4.3 as undirected
  // incidence; we check the hub dominates and the graph is sparse).
  EXPECT_GE(stats.max, 60);
  EXPECT_LE(stats.average, 6.0);
  EXPECT_TRUE(ContainsEmbedding(data->cohesive_pattern, data->graph));
}

}  // namespace
}  // namespace spidermine
