#include "spidermine/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/vf2.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace spidermine {
namespace {

// Two vertex-disjoint labeled triangles: the largest frequent pattern at
// sigma = 2 under vertex-MIS support is the triangle itself.
LabeledGraph TwoTriangles() {
  GraphBuilder builder;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId a = builder.AddVertex(0);
    VertexId b = builder.AddVertex(1);
    VertexId c = builder.AddVertex(2);
    builder.AddEdge(a, b);
    builder.AddEdge(b, c);
    builder.AddEdge(a, c);
  }
  return std::move(builder.Build()).value();
}

TEST(OracleTest, FindsPlantedTriangleAsTopPattern) {
  LabeledGraph g = TwoTriangles();
  OracleConfig config;
  config.min_support = 2;
  config.k = 3;
  config.dmax = 2;
  Result<OracleResult> result = ExactTopKLargest(g, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->exact);
  ASSERT_FALSE(result->top_k.empty());
  const OraclePattern& top = result->top_k.front();
  EXPECT_EQ(top.pattern.NumVertices(), 3);
  EXPECT_EQ(top.pattern.NumEdges(), 3);
  EXPECT_EQ(top.support, 2);
  EXPECT_EQ(top.diameter, 1);
}

TEST(OracleTest, DiameterBoundFiltersLongPatterns) {
  // Two disjoint labeled paths of 4 vertices (diameter 3). With dmax = 1
  // only single edges qualify; with dmax = 3 the full path wins.
  GraphBuilder builder;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId first = builder.AddVertex(0);
    VertexId prev = first;
    for (int i = 1; i < 4; ++i) {
      VertexId next = builder.AddVertex(i);
      builder.AddEdge(prev, next);
      prev = next;
    }
  }
  LabeledGraph g = std::move(builder.Build()).value();

  OracleConfig tight;
  tight.min_support = 2;
  tight.k = 5;
  tight.dmax = 1;
  Result<OracleResult> tight_result = ExactTopKLargest(g, tight);
  ASSERT_TRUE(tight_result.ok());
  ASSERT_FALSE(tight_result->top_k.empty());
  for (const OraclePattern& p : tight_result->top_k) {
    EXPECT_LE(p.diameter, 1);
    EXPECT_LE(p.pattern.NumEdges(), 1);
  }

  OracleConfig loose = tight;
  loose.dmax = 3;
  Result<OracleResult> loose_result = ExactTopKLargest(g, loose);
  ASSERT_TRUE(loose_result.ok());
  ASSERT_FALSE(loose_result->top_k.empty());
  EXPECT_EQ(loose_result->top_k.front().pattern.NumVertices(), 4);
  EXPECT_EQ(loose_result->top_k.front().diameter, 3);
  EXPECT_GT(loose_result->total_qualifying, tight_result->total_qualifying);
}

TEST(OracleTest, BudgetAbortIsReportedNotSilent) {
  Rng rng(5);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(200, 3.0, 3, &rng).Build()).value();
  OracleConfig config;
  config.min_support = 2;
  config.k = 5;
  config.dmax = 4;
  config.max_patterns = 10;  // absurdly small
  Result<OracleResult> result = ExactTopKLargest(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
}

TEST(OracleTest, InvalidConfigsFail) {
  LabeledGraph g = TwoTriangles();
  OracleConfig bad_k;
  bad_k.k = 0;
  EXPECT_FALSE(ExactTopKLargest(g, bad_k).ok());
  OracleConfig bad_dmax;
  bad_dmax.dmax = -1;
  EXPECT_FALSE(ExactTopKLargest(g, bad_dmax).ok());
}

TEST(OracleTest, RanksBySizeDescending) {
  LabeledGraph g = TwoTriangles();
  OracleConfig config;
  config.min_support = 2;
  config.k = 100;
  config.dmax = 2;
  Result<OracleResult> result = ExactTopKLargest(g, config);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->top_k.size(); ++i) {
    EXPECT_GE(result->top_k[i - 1].pattern.NumEdges(),
              result->top_k[i].pattern.NumEdges());
  }
}

TEST(OracleTest, ContainsIsomorphicPatternHelper) {
  Pattern triangle(0);
  VertexId b = triangle.AddVertex(1);
  VertexId c = triangle.AddVertex(2);
  triangle.AddEdge(0, b);
  triangle.AddEdge(b, c);
  triangle.AddEdge(0, c);

  // Same triangle built in a different vertex order.
  Pattern shuffled(2);
  VertexId x = shuffled.AddVertex(0);
  VertexId y = shuffled.AddVertex(1);
  shuffled.AddEdge(0, x);
  shuffled.AddEdge(x, y);
  shuffled.AddEdge(0, y);

  Pattern edge_only(0);
  edge_only.AddVertex(1);
  edge_only.AddEdge(0, 1);

  EXPECT_TRUE(ContainsIsomorphicPattern({shuffled}, triangle));
  EXPECT_FALSE(ContainsIsomorphicPattern({edge_only}, triangle));
  EXPECT_FALSE(ContainsIsomorphicPattern({}, triangle));
}

// End-to-end cross-validation: on a small planted graph, SpiderMine's
// largest result should match the oracle's largest pattern size (the
// probabilistic guarantee makes the full top-K comparison statistical; the
// guarantee_test covers that over many seeds).
TEST(OracleTest, SpiderMineTopSizeMatchesOracleOnPlantedGraph) {
  Rng rng(77);
  GraphBuilder builder = GenerateErdosRenyi(120, 1.5, 20, &rng);
  Pattern planted = RandomPatternWithDiameter(8, 4, 20, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 3, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  OracleConfig oracle_config;
  oracle_config.min_support = 3;
  oracle_config.k = 1;
  oracle_config.dmax = 4;
  Result<OracleResult> oracle = ExactTopKLargest(g, oracle_config);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(oracle->exact);
  ASSERT_FALSE(oracle->top_k.empty());

  // The miner is probabilistic (each run succeeds with prob >= 1 - eps);
  // require that some run out of a handful of fixed seeds reaches the
  // oracle's optimum. The statistical success *rate* is guarantee_test's
  // job; this test pins the end-to-end agreement of the two engines.
  int32_t best_edges = 0;
  for (uint64_t seed : {3u, 4u, 5u, 6u, 7u}) {
    MineConfig mine_config;
    mine_config.min_support = 3;
    mine_config.k = 5;
    mine_config.dmax = 4;
    mine_config.vmin = 8;
    mine_config.rng_seed = seed;
    mine_config.restarts = 3;
    Result<MineResult> mined = SpiderMiner(&g, mine_config).Mine();
    ASSERT_TRUE(mined.ok());
    ASSERT_FALSE(mined->patterns.empty());
    best_edges = std::max(best_edges, mined->patterns.front().NumEdges());
    if (best_edges >= oracle->top_k.front().pattern.NumEdges()) break;
  }
  EXPECT_GE(best_edges, oracle->top_k.front().pattern.NumEdges());
}

}  // namespace
}  // namespace spidermine
