#include "spidermine/closure.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "pattern/vf2.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace spidermine {
namespace {

// Two vertex-disjoint labeled triangles (labels 0-1-2).
LabeledGraph TwoTriangles() {
  GraphBuilder builder;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId a = builder.AddVertex(0);
    VertexId b = builder.AddVertex(1);
    VertexId c = builder.AddVertex(2);
    builder.AddEdge(a, b);
    builder.AddEdge(b, c);
    builder.AddEdge(a, c);
  }
  return std::move(builder.Build()).value();
}

// The open path 0-1-2 (missing the 0-2 closing edge).
Pattern OpenTriangle() {
  Pattern p(0);
  VertexId b = p.AddVertex(1);
  VertexId c = p.AddVertex(2);
  p.AddEdge(0, b);
  p.AddEdge(b, c);
  return p;
}

TEST(ClosureTest, ClosesTriangleEdge) {
  LabeledGraph g = TwoTriangles();
  Pattern p = OpenTriangle();
  std::vector<Embedding> embeddings = FindEmbeddings(p, g);
  ASSERT_GE(embeddings.size(), 2u);
  int64_t support = 0;
  int32_t added =
      CloseInternalEdges(g, &p, &embeddings, SupportMeasureKind::kGreedyMisVertex,
                         /*min_support=*/2, &support);
  EXPECT_EQ(added, 1);
  EXPECT_EQ(p.NumEdges(), 3);
  EXPECT_TRUE(p.HasEdge(0, 2));
  EXPECT_EQ(support, 2);
  // Surviving embeddings all realize the new edge.
  for (const Embedding& e : embeddings) {
    EXPECT_TRUE(g.HasEdge(e[0], e[2]));
  }
}

TEST(ClosureTest, RespectsMinSupport) {
  // One triangle and one open path: the closing edge exists in only one
  // embedding, below sigma = 2.
  GraphBuilder builder;
  VertexId a = builder.AddVertex(0);
  VertexId b = builder.AddVertex(1);
  VertexId c = builder.AddVertex(2);
  builder.AddEdge(a, b);
  builder.AddEdge(b, c);
  builder.AddEdge(a, c);
  VertexId d = builder.AddVertex(0);
  VertexId e = builder.AddVertex(1);
  VertexId f = builder.AddVertex(2);
  builder.AddEdge(d, e);
  builder.AddEdge(e, f);
  LabeledGraph g = std::move(builder.Build()).value();

  Pattern p = OpenTriangle();
  std::vector<Embedding> embeddings = FindEmbeddings(p, g);
  int32_t added =
      CloseInternalEdges(g, &p, &embeddings, SupportMeasureKind::kGreedyMisVertex,
                         /*min_support=*/2, nullptr);
  EXPECT_EQ(added, 0);
  EXPECT_EQ(p.NumEdges(), 2);

  // With sigma = 1 the edge is addable; embeddings narrow to the triangle.
  added =
      CloseInternalEdges(g, &p, &embeddings, SupportMeasureKind::kGreedyMisVertex,
                         /*min_support=*/1, nullptr);
  EXPECT_EQ(added, 1);
  ASSERT_EQ(embeddings.size(), 1u);
}

TEST(ClosureTest, AlreadyClosedPatternUnchanged) {
  LabeledGraph g = TwoTriangles();
  Pattern p = OpenTriangle();
  p.AddEdge(0, 2);  // full triangle
  std::vector<Embedding> embeddings = FindEmbeddings(p, g);
  const size_t embeddings_before = embeddings.size();
  int32_t added =
      CloseInternalEdges(g, &p, &embeddings, SupportMeasureKind::kGreedyMisVertex,
                         /*min_support=*/2, nullptr);
  EXPECT_EQ(added, 0);
  EXPECT_EQ(p.NumEdges(), 3);
  EXPECT_EQ(embeddings.size(), embeddings_before);
}

TEST(ClosureTest, AddsMultipleEdgesGreedily) {
  // Two disjoint copies of K4; the pattern is its spanning star, missing
  // all three leaf-leaf edges.
  GraphBuilder builder;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId v0 = builder.AddVertex(0);
    VertexId v1 = builder.AddVertex(1);
    VertexId v2 = builder.AddVertex(2);
    VertexId v3 = builder.AddVertex(3);
    for (VertexId x : {v1, v2, v3}) builder.AddEdge(v0, x);
    builder.AddEdge(v1, v2);
    builder.AddEdge(v1, v3);
    builder.AddEdge(v2, v3);
  }
  LabeledGraph g = std::move(builder.Build()).value();

  Pattern star(0);
  VertexId s1 = star.AddVertex(1);
  VertexId s2 = star.AddVertex(2);
  VertexId s3 = star.AddVertex(3);
  star.AddEdge(0, s1);
  star.AddEdge(0, s2);
  star.AddEdge(0, s3);

  std::vector<Embedding> embeddings = FindEmbeddings(star, g);
  int64_t support = 0;
  int32_t added = CloseInternalEdges(g, &star, &embeddings,
                                     SupportMeasureKind::kGreedyMisVertex,
                                     /*min_support=*/2, &support);
  EXPECT_EQ(added, 3);
  EXPECT_EQ(star.NumEdges(), 6);  // K4
  EXPECT_EQ(support, 2);
}

TEST(ClosureTest, EmptyEmbeddingListIsNoop) {
  LabeledGraph g = TwoTriangles();
  Pattern p = OpenTriangle();
  std::vector<Embedding> embeddings;
  EXPECT_EQ(CloseInternalEdges(g, &p, &embeddings,
                               SupportMeasureKind::kGreedyMisVertex, 2),
            0);
}

// End-to-end: with closure enabled (default) the miner recovers the full
// triangle from TwoTriangles; with closure disabled the star Stage I caps
// the result at the open path.
TEST(ClosureTest, MinerRecoversTriangleOnlyWithClosure) {
  LabeledGraph g = TwoTriangles();
  MineConfig config;
  config.min_support = 2;
  config.k = 3;
  config.dmax = 2;
  config.vmin = 3;
  config.rng_seed = 1;
  config.restarts = 4;

  config.close_internal_edges = false;
  Result<MineResult> open = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(open.ok());
  ASSERT_FALSE(open->patterns.empty());
  EXPECT_LT(open->patterns.front().NumEdges(), 3);

  config.close_internal_edges = true;
  Result<MineResult> closed = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(closed.ok());
  ASSERT_FALSE(closed->patterns.empty());
  EXPECT_EQ(closed->patterns.front().NumEdges(), 3);
  EXPECT_EQ(closed->patterns.front().NumVertices(), 3);
  EXPECT_EQ(closed->patterns.front().support, 2);
  EXPECT_GT(closed->stats.closure_edges_added, 0);
}

}  // namespace
}  // namespace spidermine
