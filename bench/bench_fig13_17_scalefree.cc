// Reproduces Figures 13 and 17: scale-free (Barabasi-Albert) networks.
// Figure 17: the number of r=1 spiders and the runtime grow sharply with
// graph size (hub vertices explode the spider count). Figure 13: the size
// of the largest pattern discovered per |E|.
//
// Paper shape targets: spider count rising toward ~10^6 at the largest
// scale; SUBDUE/SEuS cannot run at all on these graphs (we demonstrate
// with budgets); SpiderMine still returns large patterns.
//
// Output rows: vertices,edges,num_spiders,stage1_seconds,total_seconds,
//              largest_vertices,largest_edges

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/barabasi_albert.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figures 13 + 17",
         "scale-free networks (Barabasi-Albert, m=3): spider counts, "
         "runtime, largest pattern; sigma=2, K=10, Dmax=6");
  std::printf("vertices,edges,num_spiders,stage1_seconds,total_seconds,"
              "largest_vertices,largest_edges\n");

  for (int64_t n : {1000, 2000, 4000, 8000, 12000}) {
    Rng rng(4000 + n);
    GraphBuilder builder = GenerateBarabasiAlbert(n, 3, 100, &rng);
    Pattern large = RandomConnectedPattern(40, 0.15, 100, &rng);
    PatternInjector injector(&builder);
    if (!injector.Inject(large, 2, &rng).ok()) return 1;
    LabeledGraph graph = std::move(builder.Build()).value();

    MineConfig config;
    config.min_support = 2;
    config.k = 10;
    config.dmax = 6;
    config.vmin = 40;
    config.rng_seed = 5;
    // Hubs explode the spider count (the Figure 17 effect); cap Stage I
    // like any practical run would and report the count reached.
    config.max_spiders = 2000000;
    config.max_star_leaves = 6;
    config.time_budget_seconds = 120;
    MineResult mined;
    double seconds = RunSpiderMine(graph, config, &mined);

    std::printf("%lld,%lld,%lld,%.3f,%.3f,%d,%d\n",
                static_cast<long long>(n),
                static_cast<long long>(graph.NumEdges()),
                static_cast<long long>(mined.stats.num_spiders),
                mined.stats.stage1_seconds, seconds,
                LargestVertices(mined.patterns),
                LargestEdges(mined.patterns));
  }
  return 0;
}
