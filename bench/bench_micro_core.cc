// Google-benchmark micro benchmarks for the library's hot kernels:
// canonical DFS codes, VF2 embedding search, spider-set computation,
// support measures and Stage I star mining. These are the operations the
// figure-level benches compose; tracking them isolates regressions.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "pattern/embedding.h"
#include "gen/erdos_renyi.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/dfs_code.h"
#include "pattern/spider_set.h"
#include "pattern/vf2.h"
#include "spider/star_miner.h"
#include "support/support_measure.h"

namespace spidermine {
namespace {

void BM_MinimumDfsCode(benchmark::State& state) {
  Rng rng(42);
  Pattern p = RandomConnectedPattern(static_cast<int32_t>(state.range(0)),
                                     0.3, 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimumDfsCode(p));
  }
  state.SetLabel("pattern vertices");
}
BENCHMARK(BM_MinimumDfsCode)->Arg(6)->Arg(10)->Arg(14);

void BM_SpiderSetCompute(benchmark::State& state) {
  Rng rng(43);
  Pattern p = RandomConnectedPattern(static_cast<int32_t>(state.range(0)),
                                     0.3, 4, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpiderSetRepr::Compute(p, 1));
  }
}
BENCHMARK(BM_SpiderSetCompute)->Arg(10)->Arg(20)->Arg(40);

void BM_SpiderSetVsFullIso(benchmark::State& state) {
  // The filter-vs-exact-test tradeoff the paper's Sec. 4.2.2 motivates.
  Rng rng(44);
  Pattern a = RandomConnectedPattern(12, 0.3, 2, &rng);
  Pattern b = RandomConnectedPattern(12, 0.3, 2, &rng);
  if (state.range(0) == 0) {
    SpiderSetRepr ra = SpiderSetRepr::Compute(a, 1);
    for (auto _ : state) {
      benchmark::DoNotOptimize(SpiderSetRepr::Compute(b, 1) == ra);
    }
    state.SetLabel("spider-set compare");
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(ArePatternsIsomorphic(a, b));
    }
    state.SetLabel("exact isomorphism");
  }
}
BENCHMARK(BM_SpiderSetVsFullIso)->Arg(0)->Arg(1);

void BM_Vf2FindEmbeddings(benchmark::State& state) {
  Rng rng(45);
  LabeledGraph g = std::move(
      GenerateErdosRenyi(state.range(0), 3.0, 10, &rng).Build())
          .value();
  Pattern p = RandomConnectedPattern(4, 0.0, 10, &rng);
  Vf2Options options;
  options.max_embeddings = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindEmbeddings(p, g, options));
  }
}
BENCHMARK(BM_Vf2FindEmbeddings)->Arg(500)->Arg(2000)->Arg(8000);

void BM_ImagesIntersect(benchmark::State& state) {
  // Disjointness of sorted image sets is the inner loop of MIS-based
  // support. range(0) = size ratio: 1 exercises the two-pointer merge,
  // large ratios the galloping path; range(1) = 1 makes them intersect at
  // the midpoint (early exit), 0 keeps them disjoint (full scan).
  const int64_t ratio = state.range(0);
  const bool overlapping = state.range(1) != 0;
  std::vector<VertexId> small, large;
  for (VertexId v = 0; v < 64; ++v) small.push_back(v * 1000);
  for (VertexId v = 0; v < static_cast<VertexId>(64 * ratio); ++v) {
    large.push_back(v * 7 + 1);
  }
  if (overlapping) large[large.size() / 2] = small[small.size() / 2];
  std::sort(large.begin(), large.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ImagesIntersect(small, large));
  }
  state.SetLabel(overlapping ? "hit" : "disjoint");
}
BENCHMARK(BM_ImagesIntersect)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_SupportMeasures(benchmark::State& state) {
  Rng rng(46);
  LabeledGraph g = std::move(
      GenerateErdosRenyi(2000, 3.0, 6, &rng).Build())
          .value();
  Pattern p = RandomConnectedPattern(3, 0.0, 6, &rng);
  Vf2Options options;
  options.max_embeddings = 2000;
  std::vector<Embedding> embeddings = FindEmbeddings(p, g, options);
  auto kind = static_cast<SupportMeasureKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSupport(kind, p, embeddings));
  }
  state.SetLabel(std::string(SupportMeasureName(kind)));
}
BENCHMARK(BM_SupportMeasures)
    ->Arg(static_cast<int>(SupportMeasureKind::kEmbeddingCount))
    ->Arg(static_cast<int>(SupportMeasureKind::kMinImage))
    ->Arg(static_cast<int>(SupportMeasureKind::kGreedyMisVertex))
    ->Arg(static_cast<int>(SupportMeasureKind::kGreedyMisEdge));

void BM_StarMining(benchmark::State& state) {
  Rng rng(47);
  LabeledGraph g = std::move(
      GenerateErdosRenyi(state.range(0), 3.0, 50, &rng).Build())
          .value();
  StarMinerConfig config;
  config.min_support = 2;
  config.max_leaves = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineStarSpiders(g, config));
  }
}
BENCHMARK(BM_StarMining)->Arg(1000)->Arg(5000)->Arg(20000);

}  // namespace
}  // namespace spidermine

BENCHMARK_MAIN();
