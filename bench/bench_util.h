#pragma once

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary prints a header describing the paper artifact it regenerates,
// then CSV rows of the same series the paper plots. Absolute numbers
// differ from the paper (hardware + Java vs C++); EXPERIMENTS.md records
// the shape comparison.

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/timer.h"
#include "graph/labeled_graph.h"
#include "spidermine/config.h"
#include "spidermine/miner.h"
#include "spidermine/session.h"

namespace spidermine::bench {

/// Process peak resident set size in bytes (0 when unavailable). Note the
/// value is a process-lifetime high-water mark: within one bench it only
/// ever grows, so report it per run and interpret the first budgeted run's
/// value as the bound of interest.
inline int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Prints the bench banner.
inline void Banner(const char* artifact, const char* description) {
  std::printf("# === %s ===\n# %s\n", artifact, description);
}

/// Timed SpiderMine run; returns total seconds and fills \p out. Kept on
/// the deprecated fused shim on purpose: the figure harnesses reproduce
/// the paper's one-shot runs (warning silenced locally).
inline double RunSpiderMine(const LabeledGraph& graph, MineConfig config,
                            MineResult* out) {
  WallTimer timer;
  SpiderMiner miner(&graph, config);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Result<MineResult> result = miner.Mine();
#pragma GCC diagnostic pop
  double seconds = timer.ElapsedSeconds();
  if (result.ok()) *out = std::move(result).value();
  return seconds;
}

/// Timed session build (the cold Stage I pass); returns wall seconds and
/// fills \p out on success (nullopt on failure).
inline double BuildMiningSession(const LabeledGraph& graph,
                                 SessionConfig config,
                                 std::optional<MiningSession>* out) {
  WallTimer timer;
  Result<MiningSession> session = MiningSession::Create(&graph, config);
  double seconds = timer.ElapsedSeconds();
  if (session.ok()) {
    out->emplace(std::move(session).value());
  } else {
    std::fprintf(stderr, "session build failed: %s\n",
                 session.status().ToString().c_str());
    out->reset();
  }
  return seconds;
}

/// Timed warm query against an existing session; returns wall seconds and
/// fills \p out. The sessions-vs-fused amortization the serving API buys is
/// exactly (cold stage1 seconds) / (this).
inline double RunSessionQuery(MiningSession* session, const TopKQuery& query,
                              QueryResult* out) {
  WallTimer timer;
  Result<QueryResult> result = session->RunQuery(query);
  double seconds = timer.ElapsedSeconds();
  if (result.ok()) {
    *out = std::move(result).value();
  } else {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
  }
  return seconds;
}

/// Histogram of pattern sizes (key = |V|), as the distribution figures use.
inline std::map<int32_t, int32_t> SizeDistribution(
    const std::vector<MinedPattern>& patterns) {
  std::map<int32_t, int32_t> hist;
  for (const MinedPattern& p : patterns) ++hist[p.NumVertices()];
  return hist;
}

/// Prints a size histogram as rows: algo,size,count.
inline void PrintDistribution(const char* algo,
                              const std::map<int32_t, int32_t>& hist) {
  for (const auto& [size, count] : hist) {
    std::printf("%s,%d,%d\n", algo, size, count);
  }
}

/// Largest |V| over the returned patterns (0 when empty).
inline int32_t LargestVertices(const std::vector<MinedPattern>& patterns) {
  int32_t best = 0;
  for (const MinedPattern& p : patterns) {
    best = std::max(best, p.NumVertices());
  }
  return best;
}

/// Largest |E| over the returned patterns (0 when empty).
inline int32_t LargestEdges(const std::vector<MinedPattern>& patterns) {
  int32_t best = 0;
  for (const MinedPattern& p : patterns) best = std::max(best, p.NumEdges());
  return best;
}

}  // namespace spidermine::bench
