// Reproduces Figures 14 and 15: graph-transaction setting, SpiderMine vs
// ORIGAMI. Database: 10 Erdos-Renyi graphs (500 vertices, avg degree 5,
// 65 labels) with 5 injected 30-vertex patterns. The Figure 15 variant
// additionally injects 100 small 5-vertex patterns.
//
// Paper shape targets: both algorithms find large patterns in the clean
// setting (Fig. 14: ORIGAMI "does capture some of the large patterns");
// with many small patterns ORIGAMI's distribution collapses to the small
// end while SpiderMine still returns the ~30-vertex patterns (Fig. 15).
//
// Output rows: variant,algo,size_vertices,count

#include <cstdio>
#include <map>

#include "baselines/origami.h"
#include "bench_util.h"
#include "gen/transaction_gen.h"
#include "spidermine/txn_adapter.h"

namespace {

void RunVariant(const char* variant, int32_t num_small) {
  using namespace spidermine;
  TransactionDatasetConfig gen;
  gen.num_graphs = 10;
  gen.vertices_per_graph = 500;
  gen.avg_degree = 5.0;
  gen.num_labels = 65;
  gen.num_large = 5;
  gen.large_vertices = 30;
  gen.large_txn_support = 6;
  gen.num_small = num_small;
  gen.small_vertices = 5;
  gen.small_txn_support = 8;
  gen.seed = 99;
  Result<TransactionDataset> data = GenerateTransactionDataset(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "%s: generator failed: %s\n", variant,
                 data.status().ToString().c_str());
    return;
  }
  Result<TransactionGraph> txn = BuildTransactionGraph(data->database);
  if (!txn.ok()) return;

  MineConfig config;
  config.min_support = 4;
  config.k = 10;
  config.dmax = 8;
  config.vmin = 25;
  config.rng_seed = 13;
  config.time_budget_seconds = 180;
  Result<MineResult> mined = MineTransactions(*txn, config);
  if (mined.ok()) {
    std::map<int32_t, int32_t> hist;
    for (const MinedPattern& p : mined->patterns) ++hist[p.NumVertices()];
    for (const auto& [size, count] : hist) {
      std::printf("%s,SpiderMine,%d,%d\n", variant, size, count);
    }
  }

  OrigamiConfig origami;
  origami.min_support = 4;
  origami.num_samples = 200;
  origami.max_representatives = 10;
  origami.seed = 13;
  origami.time_budget_seconds = 120;
  Result<OrigamiResult> rep = OrigamiMine(*txn, origami);
  if (rep.ok()) {
    std::map<int32_t, int32_t> hist;
    for (const OrigamiPattern& p : rep->representatives) {
      ++hist[p.pattern.NumVertices()];
    }
    for (const auto& [size, count] : hist) {
      std::printf("%s,ORIGAMI,%d,%d\n", variant, size, count);
    }
  }
}

}  // namespace

int main() {
  using namespace spidermine::bench;
  Banner("Figures 14-15",
         "graph-transaction setting: SpiderMine vs ORIGAMI; 10x ER(500, "
         "d=5, f=65), 5 large 30-vertex patterns; Fig. 15 adds 100 small "
         "patterns");
  std::printf("variant,algo,size_vertices,count\n");
  RunVariant("fig14_few_small", /*num_small=*/0);
  RunVariant("fig15_more_small", /*num_small=*/100);
  return 0;
}
