// Reproduces Figure 16 (the runtime table): wall times of SpiderMine,
// SUBDUE, SEuS and the complete miner (MoSS stand-in) on GID 1-5.
//
// Paper shape targets: SpiderMine fastest or near-fastest everywhere;
// SEuS degrades badly on the dense settings (GID 2/4); MoSS cannot finish
// GID 2/4/5 ("-" entries -- here: budget-aborted).
//
// Output rows: gid,algo,seconds,completed

#include <cstdio>

#include "baselines/complete_miner.h"
#include "baselines/seus.h"
#include "baselines/subdue.h"
#include "bench_util.h"
#include "gen/paper_datasets.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figure 16",
         "runtime table on GID 1-5: SpiderMine / SUBDUE / SEuS / complete "
         "miner (MoSS stand-in, 60s budget = the paper's 10h abort rule)");
  std::printf("gid,algo,seconds,completed\n");

  for (int32_t gid = 1; gid <= 5; ++gid) {
    Result<PaperDataset> data = BuildGidDataset(gid, /*seed=*/42);
    if (!data.ok()) return 1;
    const LabeledGraph& graph = data->graph;

    {
      MineConfig config;
      config.min_support = 2;
      config.k = 10;
      config.dmax = 4;
      config.vmin = 30;
      config.rng_seed = 42;
      config.time_budget_seconds = 120;
      MineResult mined;
      double seconds = RunSpiderMine(graph, config, &mined);
      std::printf("%d,SpiderMine,%.3f,%d\n", gid, seconds,
                  mined.stats.timed_out ? 0 : 1);
    }
    {
      SubdueConfig config;
      config.max_expansions = 20000;
      config.time_budget_seconds = 60;
      WallTimer timer;
      Result<SubdueResult> r = SubdueDiscover(graph, config);
      std::printf("%d,SUBDUE,%.3f,%d\n", gid, timer.ElapsedSeconds(),
                  r.ok() && !r->timed_out ? 1 : 0);
    }
    {
      SeusConfig config;
      config.min_support = 2;
      config.time_budget_seconds = 60;
      WallTimer timer;
      Result<SeusResult> r = SeusDiscover(graph, config);
      std::printf("%d,SEuS,%.3f,%d\n", gid, timer.ElapsedSeconds(),
                  r.ok() && !r->timed_out ? 1 : 0);
    }
    {
      CompleteMinerConfig config;
      config.min_support = 2;
      config.max_patterns = 2000000;
      config.time_budget_seconds = 60;
      WallTimer timer;
      Result<CompleteMineResult> r = MineComplete(graph, config);
      // aborted == the paper's "-" (could not run to completion).
      std::printf("%d,CompleteMiner,%.3f,%d\n", gid, timer.ElapsedSeconds(),
                  r.ok() && !r->aborted ? 1 : 0);
    }
  }
  return 0;
}
