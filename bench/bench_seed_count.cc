// Reproduces the Section 4.1 worked example and tabulates the Lemma 2
// seed count M across (K, epsilon, Vmin/|V|) settings, then measures the
// practical side of the same knob: one MiningSession per graph (Stage I
// mined once) serving a sweep of queries with increasing seed draws M.
//
// Paper claim: "with eps = 0.1, K = 10, and Vmin = |V|/10, we get M = 85".
// Our exact solver gives 86 (the bound evaluates to 0.8942 at 85); the
// one-off difference is rounding on the paper's side and is documented in
// EXPERIMENTS.md.
//
// Output: CSV rows k,epsilon,vmin_ratio,m,success_bound_at_m, then one
// JSON row per swept M with the cold Stage I latency (paid once), the
// warm query latency and the Stage I amortization factor.

#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spidermine/seed_count.h"
#include "spidermine/session.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Section 4.1 example",
         "Lemma 2 seed counts M(K, epsilon, Vmin/|V|); paper example "
         "(0.1, 10, 1/10) quotes M=85, exact solution is 86");
  std::printf("k,epsilon,vmin_ratio,m,success_bound_at_m\n");

  const int64_t n = 100000;
  for (int32_t k : {1, 5, 10, 20}) {
    for (double epsilon : {0.2, 0.1, 0.05, 0.01}) {
      for (double ratio : {0.05, 0.1, 0.2}) {
        int64_t vmin = static_cast<int64_t>(ratio * static_cast<double>(n));
        Result<int64_t> m = ComputeSeedCount(n, vmin, k, epsilon);
        if (!m.ok()) continue;
        std::printf("%d,%.2f,%.2f,%lld,%.4f\n", k, epsilon, ratio,
                    static_cast<long long>(*m),
                    SeedSuccessLowerBound(n, vmin, k, *m));
      }
    }
  }

  // ---- Empirical M sweep: ONE session per graph, many queries. Before
  // the session API every M point re-ran Stage I; now the sweep pays the
  // spider mining once and each point is a warm query.
  Rng rng(4101);
  GraphBuilder builder = GenerateErdosRenyi(400, 2.0, 18, &rng);
  Pattern planted = RandomConnectedPattern(12, 0.15, 18, &rng);
  PatternInjector injector(&builder);
  if (!injector.Inject(planted, 3, &rng).ok()) {
    std::fprintf(stderr, "injection failed\n");
    return 1;
  }
  const LabeledGraph graph = std::move(builder.Build()).value();

  SessionConfig session_config;
  session_config.min_support = 3;
  session_config.num_threads = 0;  // all cores
  std::optional<MiningSession> session;
  const double cold_seconds =
      BuildMiningSession(graph, session_config, &session);
  if (!session.has_value()) return 1;

  for (int64_t m : {1, 4, 16, 64, 256}) {
    TopKQuery query;
    query.k = 5;
    query.dmax = 4;
    query.vmin = 12;
    query.rng_seed = 7;
    query.seed_count_override = m;
    QueryResult result;
    const double warm_seconds = RunSessionQuery(&*session, query, &result);
    std::printf(
        "{\"bench\":\"seed_count_sweep\",\"m\":%lld,\"patterns\":%zu,"
        "\"largest_vertices\":%d,\"cold_stage1_seconds\":%.4f,"
        "\"warm_query_seconds\":%.4f,\"stage1_amortization\":%.2f,"
        "\"queries_on_session\":%lld}\n",
        static_cast<long long>(m), result.patterns.size(),
        LargestVertices(result.patterns), cold_seconds, warm_seconds,
        warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0,
        static_cast<long long>(session->queries_run()));
    std::fflush(stdout);
  }
  return 0;
}
