// Reproduces the Section 4.1 worked example and tabulates the Lemma 2
// seed count M across (K, epsilon, Vmin/|V|) settings.
//
// Paper claim: "with eps = 0.1, K = 10, and Vmin = |V|/10, we get M = 85".
// Our exact solver gives 86 (the bound evaluates to 0.8942 at 85); the
// one-off difference is rounding on the paper's side and is documented in
// EXPERIMENTS.md.
//
// Output rows: k,epsilon,vmin_ratio,m,success_bound_at_m

#include <cstdio>

#include "bench_util.h"
#include "spidermine/seed_count.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Section 4.1 example",
         "Lemma 2 seed counts M(K, epsilon, Vmin/|V|); paper example "
         "(0.1, 10, 1/10) quotes M=85, exact solution is 86");
  std::printf("k,epsilon,vmin_ratio,m,success_bound_at_m\n");

  const int64_t n = 100000;
  for (int32_t k : {1, 5, 10, 20}) {
    for (double epsilon : {0.2, 0.1, 0.05, 0.01}) {
      for (double ratio : {0.05, 0.1, 0.2}) {
        int64_t vmin = static_cast<int64_t>(ratio * static_cast<double>(n));
        Result<int64_t> m = ComputeSeedCount(n, vmin, k, epsilon);
        if (!m.ok()) continue;
        std::printf("%d,%.2f,%.2f,%lld,%.4f\n", k, epsilon, ratio,
                    static_cast<long long>(*m),
                    SeedSuccessLowerBound(n, vmin, k, *m));
      }
    }
  }
  return 0;
}
