// Reproduces Figure 19: sensitivity of the top-5 result to the diameter
// bound Dmax (d = Dmax/2 in {1, 2, 3, 4}), on a GID-7-style dataset.
//
// Paper shape target: results are robust "unless Dmax is too small" --
// d = 1 truncates growth before separated seed spiders can merge, so the
// recovered patterns shrink; d >= 2 recovers the full sizes.
//
// Output rows: dmax,rank,size_vertices,size_edges

#include <cstdio>

#include "bench_util.h"
#include "gen/paper_datasets.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figure 19",
         "top-5 sizes vs Dmax (d = Dmax/2 in 1..4) on a GID-7-style "
         "dataset; sigma=10, K=5");
  std::printf("dmax,rank,size_vertices,size_edges\n");

  // GID-7 recipe scaled to keep the 4-point sweep fast.
  GidSpec spec = Table3Spec(7);
  spec.num_vertices = 8000;
  spec.num_labels = 420;
  Result<PaperDataset> data = BuildGidDataset(spec, /*seed=*/7);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  for (int32_t d = 1; d <= 4; ++d) {
    MineConfig config;
    config.min_support = 10;
    config.k = 5;
    config.dmax = 2 * d;
    config.vmin = 50;
    config.rng_seed = 42;
    config.time_budget_seconds = 120;
    MineResult mined;
    RunSpiderMine(data->graph, config, &mined);
    for (size_t rank = 0; rank < mined.patterns.size(); ++rank) {
      std::printf("%d,%zu,%d,%d\n", config.dmax, rank + 1,
                  mined.patterns[rank].NumVertices(),
                  mined.patterns[rank].NumEdges());
    }
  }
  return 0;
}
