// Reproduces Appendix C.1(4): runtime as a function of the error bound
// epsilon, on the Jeti-style call graph with minimum support 10. The paper
// measured 7.198s (eps=0.45), 7.725s (eps=0.25), 9.103s (eps=0.05).
//
// Shape target: smaller epsilon => more seed spiders (larger M) => mildly
// longer runtime; the effect is sublinear because Stage I dominates.
//
// Output rows: epsilon,seed_count_m,seconds

#include <cstdio>

#include "bench_util.h"
#include "gen/callgraph_sim.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Appendix C.1(4)",
         "runtime vs epsilon on the Jeti-style call graph (sigma=10); "
         "paper: 7.2s / 7.7s / 9.1s for eps = 0.45 / 0.25 / 0.05");
  std::printf("epsilon,seed_count_m,seconds\n");

  CallGraphSimConfig sim;
  Result<CallGraphDataset> data = GenerateCallGraphSim(sim);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  for (double epsilon : {0.45, 0.25, 0.05}) {
    MineConfig config;
    config.min_support = 10;
    config.k = 10;
    config.dmax = 6;
    // Vmin matches the planted cohesive pattern (30 methods, Fig. 24
    // scale). The paper's ~7-9s runtimes imply a draw size M far below
    // "every spider"; Vmin = 10 on an 835-vertex graph degenerates to
    // drawing nearly all spiders and swamps the epsilon effect.
    config.vmin = 30;
    config.epsilon = epsilon;
    config.rng_seed = 42;
    config.time_budget_seconds = 150;
    // The call graph's degree-69 dispatcher hub makes wide stars
    // combinatorially explosive (C(69, k) leaf assignments); bounding the
    // star width and the occurrence-list sizes keeps every point inside
    // the budget so the epsilon effect on runtime is measurable at all.
    config.max_star_leaves = 4;
    config.max_embeddings_per_pattern = 1200;
    config.max_seed_embeddings_per_anchor = 4;
    config.max_patterns_per_round = 600;
    config.max_union_instances = 64;
    MineResult mined;
    double seconds = RunSpiderMine(data->graph, config, &mined);
    std::printf("%.2f,%lld,%.3f\n", epsilon,
                static_cast<long long>(mined.stats.seed_count_m), seconds);
  }
  return 0;
}
