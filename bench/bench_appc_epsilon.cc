// Reproduces Appendix C.1(4): runtime as a function of the error bound
// epsilon, on the Jeti-style call graph with minimum support 10. The paper
// measured 7.198s (eps=0.45), 7.725s (eps=0.25), 9.103s (eps=0.05).
//
// Shape target: smaller epsilon => more seed spiders (larger M) => mildly
// longer runtime; the effect is sublinear because Stage I dominates.
//
// Epsilon is a query-scoped knob, so the sweep is three queries against
// ONE MiningSession: Stage I runs once and each row isolates exactly the
// epsilon-driven Stage II+III cost the paper's experiment is about.
//
// Output rows: epsilon,seed_count_m,warm_query_seconds; then one JSON row
// with the cold Stage I latency and per-query amortization.

#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "gen/callgraph_sim.h"
#include "spidermine/session.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Appendix C.1(4)",
         "runtime vs epsilon on the Jeti-style call graph (sigma=10); "
         "paper: 7.2s / 7.7s / 9.1s for eps = 0.45 / 0.25 / 0.05");
  std::printf("epsilon,seed_count_m,warm_query_seconds\n");

  CallGraphSimConfig sim;
  Result<CallGraphDataset> data = GenerateCallGraphSim(sim);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  SessionConfig session_config;
  session_config.min_support = 10;
  // The call graph's degree-69 dispatcher hub makes wide stars
  // combinatorially explosive (C(69, k) leaf assignments); bounding the
  // star width keeps Stage I tractable.
  session_config.max_star_leaves = 4;
  std::optional<MiningSession> session;
  const double cold_seconds =
      BuildMiningSession(data->graph, session_config, &session);
  if (!session.has_value()) return 1;

  double warm_seconds_total = 0.0;
  for (double epsilon : {0.45, 0.25, 0.05}) {
    TopKQuery query;
    query.k = 10;
    query.dmax = 6;
    // Vmin matches the planted cohesive pattern (30 methods, Fig. 24
    // scale). The paper's ~7-9s runtimes imply a draw size M far below
    // "every spider"; Vmin = 10 on an 835-vertex graph degenerates to
    // drawing nearly all spiders and swamps the epsilon effect.
    query.vmin = 30;
    query.epsilon = epsilon;
    query.rng_seed = 42;
    query.time_budget_seconds = 150;
    // Occurrence-list caps keep every point inside the budget so the
    // epsilon effect on runtime is measurable at all.
    query.max_embeddings_per_pattern = 1200;
    query.max_seed_embeddings_per_anchor = 4;
    query.max_patterns_per_round = 600;
    query.max_union_instances = 64;
    QueryResult result;
    const double seconds = RunSessionQuery(&*session, query, &result);
    warm_seconds_total += seconds;
    std::printf("%.2f,%lld,%.3f\n", epsilon,
                static_cast<long long>(result.stats.seed_count_m), seconds);
    std::fflush(stdout);
  }
  const int64_t queries = session->queries_run();
  const double warm_avg =
      queries > 0 ? warm_seconds_total / static_cast<double>(queries) : 0.0;
  std::printf(
      "{\"bench\":\"appc_epsilon\",\"queries\":%lld,"
      "\"cold_stage1_seconds\":%.4f,\"warm_query_seconds_avg\":%.4f,"
      "\"stage1_amortization\":%.2f}\n",
      static_cast<long long>(queries), cold_seconds, warm_avg,
      warm_avg > 0.0 ? cold_seconds / warm_avg : 0.0);
  return 0;
}
