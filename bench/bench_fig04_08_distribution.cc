// Reproduces Figures 4-8: pattern-size distributions mined by SpiderMine,
// SUBDUE and SEuS on the Table 1 synthetic datasets GID 1-5 (minimum
// support 2, K = 10, Dmax = 4).
//
// Paper shape targets:
//   * SpiderMine's bars sit at the large end (~30 vertices, the injected
//     large patterns + background interconnections);
//   * SUBDUE's bars sit at small sizes and shift smaller as small-pattern
//     support (GID 3/4) or count (GID 5) grows;
//   * SEuS produces mostly size <= 3 structures.
//
// Output rows: gid,algo,pattern_size_vertices,count

#include <cstdio>

#include "baselines/seus.h"
#include "baselines/subdue.h"
#include "bench_util.h"
#include "gen/paper_datasets.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figures 4-8 (+ Tables 1-2)",
         "pattern-size distribution per GID 1-5: SpiderMine vs SUBDUE vs "
         "SEuS; sigma=2, K=10, Dmax=4");
  std::printf("gid,algo,size_vertices,count\n");

  for (int32_t gid = 1; gid <= 5; ++gid) {
    Result<PaperDataset> data = BuildGidDataset(gid, /*seed=*/42);
    if (!data.ok()) {
      std::fprintf(stderr, "GID %d: %s\n", gid,
                   data.status().ToString().c_str());
      return 1;
    }

    // SpiderMine (paper: sigma=2, K=10, Dmax=4).
    MineConfig config;
    config.min_support = 2;
    config.k = 10;
    config.dmax = 4;
    config.vmin = 30;
    config.rng_seed = 42;
    config.time_budget_seconds = 120;
    MineResult mined;
    RunSpiderMine(data->graph, config, &mined);
    for (const auto& [size, count] : SizeDistribution(mined.patterns)) {
      std::printf("%d,SpiderMine,%d,%d\n", gid, size, count);
    }

    // SUBDUE.
    SubdueConfig subdue_config;
    subdue_config.max_best = 10;
    subdue_config.max_expansions = 8000;
    subdue_config.time_budget_seconds = 60;
    Result<SubdueResult> subdue = SubdueDiscover(data->graph, subdue_config);
    if (subdue.ok()) {
      std::map<int32_t, int32_t> hist;
      for (const SubduePattern& p : subdue->patterns) {
        ++hist[p.pattern.NumVertices()];
      }
      for (const auto& [size, count] : hist) {
        std::printf("%d,SUBDUE,%d,%d\n", gid, size, count);
      }
    }

    // SEuS.
    SeusConfig seus_config;
    seus_config.min_support = 2;
    seus_config.time_budget_seconds = 60;
    Result<SeusResult> seus = SeusDiscover(data->graph, seus_config);
    if (seus.ok()) {
      std::map<int32_t, int32_t> hist;
      int32_t emitted = 0;
      for (const SeusPattern& p : seus->patterns) {
        if (emitted++ >= 10) break;  // top-10 like the others
        ++hist[p.pattern.NumVertices()];
      }
      for (const auto& [size, count] : hist) {
        std::printf("%d,SEuS,%d,%d\n", gid, size, count);
      }
    }
  }
  return 0;
}
