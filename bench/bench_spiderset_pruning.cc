// Reproduces the Section 4.2.2 claims about the spider-set representation:
//   (a) pruning power -- among candidate pattern pairs that pass the cheap
//       (|V|, |E|, label multiset) pre-checks, how many does the
//       spider-set filter reject without an exact isomorphism test;
//   (b) false collisions -- pairs with equal spider-sets that are NOT
//       isomorphic (the paper's Figure 3(II) effect), and how raising r
//       from 1 to 2 removes them.
//
// Output rows: r,pairs_prechecked,filter_rejected,iso_tests_run,
//              false_collisions,reject_rate_percent

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/pattern_factory.h"
#include "pattern/spider_set.h"
#include "pattern/vf2.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Section 4.2.2 (ablation)",
         "spider-set pruning power and false-collision rate, r=1 vs r=2, "
         "over random pattern pairs that pass (n, m, labels) pre-checks");
  std::printf("r,pairs_prechecked,filter_rejected,iso_tests_run,"
              "false_collisions,reject_rate_percent\n");

  // A pool of patterns with deliberately few labels so that the cheap
  // pre-checks collide often and the spider-set filter has work to do.
  Rng rng(777);
  std::vector<Pattern> pool;
  for (int i = 0; i < 400; ++i) {
    pool.push_back(RandomConnectedPattern(
        static_cast<int32_t>(rng.UniformInt(5, 9)), 0.35, 2, &rng));
  }

  for (int32_t r = 1; r <= 2; ++r) {
    std::vector<SpiderSetRepr> reprs;
    reprs.reserve(pool.size());
    for (const Pattern& p : pool) {
      reprs.push_back(SpiderSetRepr::Compute(p, r));
    }
    int64_t prechecked = 0;
    int64_t rejected = 0;
    int64_t iso_run = 0;
    int64_t false_collisions = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
      for (size_t j = i + 1; j < pool.size(); ++j) {
        const Pattern& a = pool[i];
        const Pattern& b = pool[j];
        if (a.NumVertices() != b.NumVertices()) continue;
        if (a.NumEdges() != b.NumEdges()) continue;
        if (a.SortedLabels() != b.SortedLabels()) continue;
        ++prechecked;
        if (!(reprs[i] == reprs[j])) {
          ++rejected;  // Theorem 2: safe to skip the exact test
          continue;
        }
        ++iso_run;
        if (!ArePatternsIsomorphic(a, b)) ++false_collisions;
      }
    }
    double rate = prechecked > 0
                      ? 100.0 * static_cast<double>(rejected) /
                            static_cast<double>(prechecked)
                      : 0.0;
    std::printf("%d,%lld,%lld,%lld,%lld,%.1f\n", r,
                static_cast<long long>(prechecked),
                static_cast<long long>(rejected),
                static_cast<long long>(iso_run),
                static_cast<long long>(false_collisions), rate);
  }

  // The cube vs Moebius-ladder pair: collides at r=1, separated at r=2
  // (Figure 3(II) made concrete; also covered by unit tests).
  Pattern cube;
  for (int i = 0; i < 8; ++i) cube.AddVertex(0);
  for (int i = 0; i < 4; ++i) {
    cube.AddEdge(i, (i + 1) % 4);
    cube.AddEdge(4 + i, 4 + (i + 1) % 4);
    cube.AddEdge(i, 4 + i);
  }
  Pattern moebius;
  for (int i = 0; i < 8; ++i) moebius.AddVertex(0);
  for (int i = 0; i < 8; ++i) moebius.AddEdge(i, (i + 1) % 8);
  for (int i = 0; i < 4; ++i) moebius.AddEdge(i, i + 4);
  bool collide_r1 = SpiderSetRepr::Compute(cube, 1) ==
                    SpiderSetRepr::Compute(moebius, 1);
  bool collide_r2 = SpiderSetRepr::Compute(cube, 2) ==
                    SpiderSetRepr::Compute(moebius, 2);
  std::printf("# fig3II cube-vs-moebius: collide_r1=%d collide_r2=%d "
              "(paper: same sets at r=1, different at r=2)\n",
              collide_r1 ? 1 : 0, collide_r2 ? 1 : 0);
  return 0;
}
