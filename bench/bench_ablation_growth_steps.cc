// Reproduces the Section 4.2.1 argument: spider assembly reaches large
// patterns in far fewer growth steps than edge-by-edge (incremental)
// growth. The paper's toy arithmetic: 4 patterns of size 24 assembled
// from 6 spiders of size 10 take 60 + 12 = 72 steps vs 96 incremental
// steps (a 25% saving); measured here on real mining runs by comparing
// SpiderMine's spider-append count against the complete miner's
// edge-extension count to reach the same largest pattern.
//
// Output rows: scenario,metric,value

#include <cstdio>

#include "baselines/complete_miner.h"
#include "bench_util.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Section 4.2.1 (ablation)",
         "growth-step economy: spider assembly vs edge-by-edge growth");
  std::printf("scenario,metric,value\n");

  // The paper's toy arithmetic, reproduced exactly.
  {
    const int spiders = 6, spider_size = 10, patterns = 4,
              spiders_per_pattern = 3;
    const double overlap = 0.2;
    const int pattern_size = static_cast<int>(
        spider_size * spiders_per_pattern * (1.0 - overlap));
    const int incremental = pattern_size * patterns;
    const int assembly =
        spiders * spider_size + patterns * spiders_per_pattern;
    std::printf("toy,pattern_size,%d\n", pattern_size);
    std::printf("toy,incremental_steps,%d\n", incremental);
    std::printf("toy,assembly_steps,%d\n", assembly);
    std::printf("toy,saving_percent,%.1f\n",
                100.0 * (incremental - assembly) / incremental);
  }

  // Measured: same planted-pattern instance mined both ways.
  Rng rng(4242);
  GraphBuilder builder = GenerateErdosRenyi(400, 2.0, 40, &rng);
  Pattern large = RandomConnectedPattern(24, 0.1, 40, &rng);
  PatternInjector injector(&builder);
  if (!injector.Inject(large, 2, &rng).ok()) return 1;
  LabeledGraph graph = std::move(builder.Build()).value();

  MineConfig config;
  config.min_support = 2;
  config.k = 5;
  config.dmax = 8;
  config.vmin = 24;
  config.rng_seed = 5;
  config.time_budget_seconds = 90;
  MineResult mined;
  double sm_seconds = RunSpiderMine(graph, config, &mined);
  std::printf("measured,spidermine_largest_vertices,%d\n",
              LargestVertices(mined.patterns));
  std::printf("measured,spidermine_spider_appends,%lld\n",
              static_cast<long long>(mined.stats.growth_steps));
  std::printf("measured,spidermine_seconds,%.3f\n", sm_seconds);

  CompleteMinerConfig complete_config;
  complete_config.min_support = 2;
  complete_config.time_budget_seconds = 90;
  complete_config.max_patterns = 500000;
  WallTimer timer;
  Result<CompleteMineResult> complete = MineComplete(graph, complete_config);
  if (complete.ok()) {
    int32_t largest = 0;
    for (const CompletePattern& p : complete->patterns) {
      largest = std::max(largest, p.pattern.NumVertices());
    }
    std::printf("measured,complete_largest_vertices,%d\n", largest);
    std::printf("measured,complete_edge_expansions,%lld\n",
                static_cast<long long>(complete->expansions));
    std::printf("measured,complete_seconds,%.3f\n", timer.ElapsedSeconds());
    std::printf("measured,complete_aborted,%d\n", complete->aborted ? 1 : 0);
  }
  return 0;
}
