// Reproduces Appendix C.1(3): Stage I cost as a function of the spider
// radius r. The paper, on a 600-edge graph with 30 labels, measured 610ms
// (r=1), 2.7s (r=2), 87s (r=3) and ran out of memory at r=4.
//
// Shape target: runtime and spider count grow exponentially in r; we stop
// at r=3 and cap the spider count like any practical run (the cap standing
// in for the paper's out-of-memory).
//
// Output rows: radius,seconds,num_spiders,truncated

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "spider/ball_miner.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Appendix C.1(3)",
         "Stage I (all-spider mining) cost vs radius r on a 600-edge, "
         "30-label graph; paper: 0.61s / 2.7s / 87s / OOM for r=1..4");
  std::printf("radius,seconds,num_spiders,truncated\n");

  Rng rng(606);
  LabeledGraph graph =
      std::move(GenerateErdosRenyi(400, 3.0, 30, &rng).Build()).value();

  for (int32_t r = 1; r <= 3; ++r) {
    BallMinerConfig config;
    config.min_support = 2;
    config.radius = r;
    config.max_spiders = 500000;  // stands in for the paper's OOM at r=4
    config.max_embeddings_per_pattern = 2000;
    WallTimer timer;
    Result<BallMineResult> result = MineBallSpiders(graph, config);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "r=%d failed: %s\n", r,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%d,%.3f,%zu,%d\n", r, seconds, result->spiders.size(),
                result->truncated ? 1 : 0);
  }
  return 0;
}
