// Reproduces Figure 20: pattern-size distribution on the DBLP co-author
// network (simulated; see DESIGN.md Sec. 4), SpiderMine vs SUBDUE, with
// minimum support 4 and K = 20 as in the paper.
//
// Paper shape targets: SpiderMine returns 20 large patterns with the
// largest around 25 vertices; SUBDUE's distribution stays at 1-2 vertices
// with a tail near ~16; small patterns are "almost ubiquitous" and
// uninformative, large ones reveal collaborative structure.
//
// Output rows: algo,size_vertices,count

#include <cstdio>
#include <map>

#include "baselines/subdue.h"
#include "bench_util.h"
#include "gen/dblp_sim.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figure 20",
         "DBLP co-author network (simulated, 6508 authors / ~24.4k "
         "edges): SpiderMine (sigma=4, K=20) vs SUBDUE");
  std::printf("algo,size_vertices,count\n");

  DblpSimConfig sim;  // defaults match the paper's extracted graph
  Result<DblpDataset> data = GenerateDblpSim(sim);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  MineConfig config;
  config.min_support = 4;
  config.k = 20;
  config.dmax = 8;
  config.vmin = 12;
  config.rng_seed = 42;
  config.time_budget_seconds = 180;
  MineResult mined;
  RunSpiderMine(data->graph, config, &mined);
  for (const auto& [size, count] : SizeDistribution(mined.patterns)) {
    std::printf("SpiderMine,%d,%d\n", size, count);
  }

  SubdueConfig subdue_config;
  subdue_config.max_best = 20;
  subdue_config.max_expansions = 20000;
  subdue_config.time_budget_seconds = 90;
  Result<SubdueResult> subdue = SubdueDiscover(data->graph, subdue_config);
  if (subdue.ok()) {
    std::map<int32_t, int32_t> hist;
    for (const SubduePattern& p : subdue->patterns) {
      ++hist[p.pattern.NumVertices()];
    }
    for (const auto& [size, count] : hist) {
      std::printf("SUBDUE,%d,%d\n", size, count);
    }
  }
  return 0;
}
