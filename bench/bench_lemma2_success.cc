// Empirical validation of Lemma 2: sweep the seed-draw size M and measure
// the rate at which SpiderMine recovers a planted large pattern, next to
// the analytic lower bound (1 - (M+1)(1 - Vmin/|V|)^M)^K.
//
// The paper gives the bound analytically (Sec. 4.1, Appendix A) but never
// plots it against measurements; this ablation closes that gap. Because the
// analytic value is a LOWER bound built from worst-case estimates, the
// measured rate should sit at or above it once M leaves the starvation
// regime, and both curves must rise monotonically toward 1.
//
// Output rows: m,analytic_lower_bound,measured_success_rate,trials

#include <atomic>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "spidermine/seed_count.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Lemma 2 ablation",
         "planted-pattern recovery rate vs seed-draw size M, against the "
         "analytic lower bound");

  // One fixed planted instance: ER background + one large planted pattern
  // with 3 disjoint embeddings.
  Rng rng(20110829);
  GraphBuilder builder = GenerateErdosRenyi(300, 1.8, 20, &rng);
  const Pattern planted = RandomPatternWithDiameter(16, 4, 20, &rng);
  PatternInjector injector(&builder);
  if (!injector.Inject(planted, 3, &rng).ok()) {
    std::printf("error,injection failed\n");
    return 1;
  }
  const LabeledGraph graph = std::move(builder.Build()).value();
  const int64_t vmin = planted.NumVertices();

  std::printf("m,analytic_lower_bound,measured_success_rate,trials\n");
  const int trials = 15;
  // Trials are independent runs against the shared immutable graph, so
  // they fan out across the worker pool; seeds are fixed per (m, t), so
  // the measured rates are identical to a sequential sweep.
  ThreadPool pool(ThreadPool::DefaultThreads());
  for (int64_t m : {1, 2, 4, 8, 16, 32, 64, 128}) {
    std::atomic<int> successes{0};
    pool.ParallelFor(trials, [&graph, vmin, m, &successes](int64_t t) {
      MineConfig config;
      config.min_support = 3;
      config.k = 3;
      config.dmax = 4;
      config.vmin = vmin;
      config.seed_count_override = m;
      config.rng_seed = 9000 + static_cast<uint64_t>(100 * m + t);
      MineResult result;
      RunSpiderMine(graph, config, &result);
      if (!result.patterns.empty() &&
          result.patterns.front().NumVertices() >= vmin) {
        successes.fetch_add(1);
      }
    });
    const double bound =
        SeedSuccessLowerBound(graph.NumVertices(), vmin, /*k=*/1, m);
    std::printf("%lld,%.4f,%.4f,%d\n", static_cast<long long>(m), bound,
                static_cast<double>(successes.load()) / trials, trials);
  }
  return 0;
}
