// Empirical validation of Lemma 2: sweep the seed-draw size M and measure
// the rate at which SpiderMine recovers a planted large pattern, next to
// the analytic lower bound (1 - (M+1)(1 - Vmin/|V|)^M)^K.
//
// The paper gives the bound analytically (Sec. 4.1, Appendix A) but never
// plots it against measurements; this ablation closes that gap. Because the
// analytic value is a LOWER bound built from worst-case estimates, the
// measured rate should sit at or above it once M leaves the starvation
// regime, and both curves must rise monotonically toward 1.
//
// All 8 x 15 trial runs are queries against ONE MiningSession: the spider
// set of the fixed graph is mined once and every (m, trial) point replays
// only the randomized Stages II+III — the paper's own restart argument
// (Sec. 4.2.1) turned into the serving API. Per-trial seeds are fixed, so
// the measured rates are identical to the old mine-per-trial sweep.
//
// Output rows: m,analytic_lower_bound,measured_success_rate,trials; then
// one JSON summary row with the Stage I amortization across all queries.

#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "spidermine/seed_count.h"
#include "spidermine/session.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Lemma 2 ablation",
         "planted-pattern recovery rate vs seed-draw size M, against the "
         "analytic lower bound; one session serves every trial");

  // One fixed planted instance: ER background + one large planted pattern
  // with 3 disjoint embeddings.
  Rng rng(20110829);
  GraphBuilder builder = GenerateErdosRenyi(300, 1.8, 20, &rng);
  const Pattern planted = RandomPatternWithDiameter(16, 4, 20, &rng);
  PatternInjector injector(&builder);
  if (!injector.Inject(planted, 3, &rng).ok()) {
    std::printf("error,injection failed\n");
    return 1;
  }
  const LabeledGraph graph = std::move(builder.Build()).value();
  const int64_t vmin = planted.NumVertices();

  // Stage I once; every trial below is a warm query on this session (each
  // query fans out internally over all cores).
  SessionConfig session_config;
  session_config.min_support = 3;
  session_config.num_threads = 0;  // all cores
  std::optional<MiningSession> session;
  const double cold_seconds =
      BuildMiningSession(graph, session_config, &session);
  if (!session.has_value()) return 1;

  std::printf("m,analytic_lower_bound,measured_success_rate,trials\n");
  const int trials = 15;
  double warm_seconds_total = 0.0;
  for (int64_t m : {1, 2, 4, 8, 16, 32, 64, 128}) {
    int successes = 0;
    for (int t = 0; t < trials; ++t) {
      TopKQuery query;
      query.k = 3;
      query.dmax = 4;
      query.vmin = vmin;
      query.seed_count_override = m;
      query.rng_seed = 9000 + static_cast<uint64_t>(100 * m + t);
      QueryResult result;
      warm_seconds_total += RunSessionQuery(&*session, query, &result);
      if (!result.patterns.empty() &&
          result.patterns.front().NumVertices() >= vmin) {
        ++successes;
      }
    }
    const double bound =
        SeedSuccessLowerBound(graph.NumVertices(), vmin, /*k=*/1, m);
    std::printf("%lld,%.4f,%.4f,%d\n", static_cast<long long>(m), bound,
                static_cast<double>(successes) / trials, trials);
    std::fflush(stdout);
  }
  const int64_t queries = session->queries_run();
  const double warm_avg =
      queries > 0 ? warm_seconds_total / static_cast<double>(queries) : 0.0;
  std::printf(
      "{\"bench\":\"lemma2_success\",\"queries\":%lld,"
      "\"cold_stage1_seconds\":%.4f,\"warm_query_seconds_avg\":%.4f,"
      "\"stage1_amortization\":%.2f}\n",
      static_cast<long long>(queries), cold_seconds, warm_avg,
      warm_avg > 0.0 ? cold_seconds / warm_avg : 0.0);
  return 0;
}
