// Query throughput per support measure against one resident session.
//
// The measure is a per-query knob, so one Stage I pass serves every
// workload; what differs is the closure recount — greedy MIS / MNI /
// count over the injective lists, the homomorphic recount (carried list
// or homomorphic VF2 fallback), and transaction coverage over a
// per-vertex payload map, with and without per-run sampling. This bench
// answers the operator's question "what does switching measures cost?":
// per measure, queries/sec on a 50k-vertex graph, plus the headline
// ratio hom_vs_mni_qps (homomorphic recount vs the same minimum-image
// recount over injective lists).
//
// Determinism rides along: each measure's transcript must be
// byte-identical across repeats (same seed, same session), or the bench
// aborts — a throughput number for a nondeterministic engine is garbage.
//
// Acceptance bar: the homomorphic recount must stay within 5x of the
// mni query rate (ratio >= 0.2) — it shares the growth path and only
// relaxes the final recount, so a collapse here means the closure
// fallback regressed. Exit 2 when the bench runs but misses the bar.
//
// Output: a single JSON object on stdout (committed as
// BENCH_support_measures.json by tools/run_bench_trajectory.sh).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/dfs_code.h"
#include "spidermine/session.h"
#include "support/support_measure.h"

namespace spidermine::bench {
namespace {

constexpr int32_t kVertices = 50'000;
constexpr double kAvgDegree = 2.0;
constexpr int32_t kLabels = 10;
constexpr int32_t kInjectVertices = 12;
constexpr int32_t kInjectCopies = 4;
constexpr int64_t kSupport = 3;
constexpr int32_t kTopK = 16;
constexpr int32_t kThreads = 0;  // all cores, like a serving deployment
constexpr int32_t kRepeats = 3;
constexpr int64_t kNumTransactions = 64;
constexpr int64_t kTxnSample = 16;
constexpr double kBar = 0.2;  // hom qps >= 0.2 * mni qps

LabeledGraph BuildGraph() {
  Rng rng(11);
  GraphBuilder builder =
      GenerateErdosRenyi(kVertices, kAvgDegree, kLabels, &rng);
  Pattern planted =
      RandomConnectedPattern(kInjectVertices, 0.15, kLabels, &rng);
  PatternInjector injector(&builder);
  if (!injector.Inject(planted, kInjectCopies, &rng).ok()) std::abort();
  return std::move(builder.Build()).value();
}

/// Synthetic per-vertex payloads: vertex v carries transaction v % 64 —
/// deterministic, every transaction populated, non-trivial intersections.
VertexTxnMap BuildTxnMap(int64_t num_vertices) {
  VertexTxnMap map;
  map.num_transactions = kNumTransactions;
  map.offsets.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (VertexId v = 0; v < num_vertices; ++v) {
    map.txn_ids.push_back(static_cast<int32_t>(v % kNumTransactions));
    map.offsets[static_cast<size_t>(v) + 1] = v + 1;
  }
  return map;
}

std::string Transcript(const std::vector<MinedPattern>& patterns) {
  std::string out;
  for (const MinedPattern& p : patterns) {
    out += StrCat("V=", p.NumVertices(), " E=", p.NumEdges(),
                  " sup=", p.support, " ",
                  DfsCodeToString(MinimumDfsCode(p.pattern)), "\n");
  }
  return out;
}

struct Cell {
  std::string name;
  SupportMeasureKind measure = SupportMeasureKind::kGreedyMisVertex;
  int64_t txn_sample = 0;
  double best_seconds = 0.0;
  double qps = 0.0;
  int64_t patterns = 0;
};

int Main() {
  std::fprintf(stderr, "building %d-vertex bench graph...\n", kVertices);
  LabeledGraph graph = BuildGraph();
  VertexTxnMap txn_map = BuildTxnMap(graph.NumVertices());

  SessionConfig config;
  config.min_support = kSupport;
  config.num_threads = kThreads;
  config.txn_map = &txn_map;
  Result<MiningSession> session = MiningSession::Create(&graph, config);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n", session.status().ToString().c_str());
    return 1;
  }

  std::vector<Cell> cells = {
      {"vertex-mis", SupportMeasureKind::kGreedyMisVertex, 0},
      {"edge-mis", SupportMeasureKind::kGreedyMisEdge, 0},
      {"mni", SupportMeasureKind::kMinImage, 0},
      {"count", SupportMeasureKind::kEmbeddingCount, 0},
      {"homomorphism", SupportMeasureKind::kHomomorphism, 0},
      {"transaction", SupportMeasureKind::kTransaction, 0},
      {"transaction-sampled", SupportMeasureKind::kTransaction, kTxnSample},
  };
  for (Cell& cell : cells) {
    TopKQuery query;
    query.min_support = kSupport;
    query.k = kTopK;
    query.dmax = 4;
    query.rng_seed = 7;
    query.support_measure = cell.measure;
    query.txn_sample = cell.txn_sample;
    // Identical engine caps for every cell, sized so even the count
    // measure — whose inflated supports defeat the frequency pruning
    // that keeps the default frontier small — stays bounded. The ratio
    // compares recount costs, not pruning luck.
    query.seed_count_override = 32;
    query.max_patterns_per_round = 256;
    query.max_embeddings_per_pattern = 4096;
    std::string reference;
    for (int32_t rep = 0; rep < kRepeats; ++rep) {
      WallTimer timer;
      Result<QueryResult> result = session->RunQuery(query);
      const double seconds = timer.ElapsedSeconds();
      if (!result.ok()) {
        std::fprintf(stderr, "query %s: %s\n", cell.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      const std::string transcript = Transcript(result->patterns);
      if (rep == 0) {
        reference = transcript;
        cell.best_seconds = seconds;
      } else if (transcript != reference) {
        std::fprintf(stderr,
                     "TRANSCRIPT MISMATCH for %s at repeat %d — the "
                     "measure is not deterministic\n",
                     cell.name.c_str(), rep);
        return 1;
      } else if (seconds < cell.best_seconds) {
        cell.best_seconds = seconds;
      }
      cell.patterns = static_cast<int64_t>(result->patterns.size());
    }
    cell.qps = cell.best_seconds > 0 ? 1.0 / cell.best_seconds : 0.0;
    std::fprintf(stderr, "%-20s best=%.3fs qps=%.2f patterns=%lld\n",
                 cell.name.c_str(), cell.best_seconds, cell.qps,
                 static_cast<long long>(cell.patterns));
  }

  auto find = [&cells](const std::string& name) -> const Cell& {
    for (const Cell& c : cells) {
      if (c.name == name) return c;
    }
    std::abort();
  };
  const double mni_qps = find("mni").qps;
  const double hom_vs_mni =
      mni_qps > 0 ? find("homomorphism").qps / mni_qps : 0.0;

  std::printf("{\n  \"bench\": \"support_measures\",\n");
  std::printf("  \"graph_vertices\": %d,\n  \"k\": %d,\n  \"repeats\": %d,\n",
              kVertices, kTopK, kRepeats);
  std::printf("  \"num_transactions\": %lld,\n  \"txn_sample\": %lld,\n",
              static_cast<long long>(kNumTransactions),
              static_cast<long long>(kTxnSample));
  std::printf("  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::printf(
        "    {\"measure\": \"%s\", \"txn_sample\": %lld, "
        "\"best_seconds\": %.6f, \"queries_per_second\": %.3f, "
        "\"patterns\": %lld}%s\n",
        c.name.c_str(), static_cast<long long>(c.txn_sample), c.best_seconds,
        c.qps, static_cast<long long>(c.patterns),
        i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"hom_vs_mni_qps_ratio\": %.3f,\n", hom_vs_mni);
  std::printf("  \"transcripts_identical_across_repeats\": true\n}\n");
  return hom_vs_mni >= kBar ? 0 : 2;  // exit 2 = ran but missed the bar
}

}  // namespace
}  // namespace spidermine::bench

int main() { return spidermine::bench::Main(); }
