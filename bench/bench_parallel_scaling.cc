// Parallel-scaling bench: runs the identical SpiderMine workload at
// increasing thread counts and emits one JSON object per run with the
// per-stage wall times, the speedup against the single-thread baseline,
// the Stage I spider-store footprint and the process peak RSS. The
// pipeline is deterministic at any thread count and any Stage I shard
// grain, so the runs do the same logical work and the speedup isolates
// parallelization overhead.
//
//   $ ./bench_parallel_scaling --vertices=100000 --max-threads=8
//   {"bench":"parallel_scaling","threads":1,...}
//   {"bench":"parallel_scaling","threads":2,...}
//
// The ROADMAP's multi-million-vertex target runs on a scale-free graph
// with a Stage I budget, demonstrating the O(max_spiders) global-budget
// memory bound (vs the old num_labels x max_spiders transient blowup):
//
//   $ ./bench_parallel_scaling --model=ba --vertices=2000000 \
//       --max-spiders=200000 --stage1-only --max-threads=8
//
// One ThreadPool per thread count is built up front and reused across the
// Mine() runs via MineConfig::pool, so repeated runs measure mining, not
// thread spawning.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

namespace {

int Run(int argc, const char* const* argv) {
  using namespace spidermine;
  FlagSet flags("bench_parallel_scaling",
                "SpiderMine stage timings vs thread count (JSON rows)");
  flags.AddString("model", "er", "background graph model: er | ba")
      .AddInt("vertices", 100000, "background graph vertices")
      .AddDouble("avg-degree", 2.5, "background average degree (er)")
      .AddInt("ba-edges", 2, "edges per new vertex (ba)")
      .AddInt("labels", 60, "vertex label count")
      .AddInt("inject-vertices", 16, "planted pattern size (0 = none)")
      .AddInt("inject-count", 4, "planted embeddings")
      .AddInt("support", 3, "support threshold sigma")
      .AddInt("k", 10, "top-K")
      .AddInt("dmax", 4, "pattern diameter bound")
      .AddInt("seed", 42, "rng seed (graph and miner)")
      .AddInt("seed-count", 64, "seed spider draw M (0 = paper formula)")
      .AddInt("max-spiders", 0, "Stage I global spider budget (0 = none)")
      .AddInt("shard-grain", 0, "Stage I vertex-range shard grain (0 = auto)")
      .AddBool("stage1-only", false,
               "stop after Stage I (memory/scaling runs on huge graphs)")
      .AddInt("max-threads", 8, "largest thread count measured (doubling)");
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const std::string model = flags.GetString("model");
  GraphBuilder builder =
      model == "ba"
          ? GenerateBarabasiAlbert(
                flags.GetInt("vertices"),
                static_cast<int32_t>(flags.GetInt("ba-edges")),
                static_cast<LabelId>(flags.GetInt("labels")), &rng)
          : GenerateErdosRenyi(flags.GetInt("vertices"),
                               flags.GetDouble("avg-degree"),
                               static_cast<LabelId>(flags.GetInt("labels")),
                               &rng);
  if (flags.GetInt("inject-vertices") > 0) {
    Pattern planted = RandomConnectedPattern(
        static_cast<int32_t>(flags.GetInt("inject-vertices")), 0.1,
        static_cast<LabelId>(flags.GetInt("labels")), &rng);
    PatternInjector injector(&builder);
    status = injector.Inject(
        planted, static_cast<int32_t>(flags.GetInt("inject-count")), &rng);
    if (!status.ok()) {
      std::fprintf(stderr, "inject: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  Result<LabeledGraph> built = builder.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const LabeledGraph& graph = *built;

  bench::Banner("parallel_scaling",
                "stage seconds vs --threads; deterministic workload");

  MineConfig config;
  config.min_support = flags.GetInt("support");
  config.k = static_cast<int32_t>(flags.GetInt("k"));
  config.dmax = static_cast<int32_t>(flags.GetInt("dmax"));
  config.vmin = 8;
  config.rng_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.seed_count_override = flags.GetInt("seed-count");
  config.max_spiders = flags.GetInt("max-spiders");
  config.stage1_shard_grain = flags.GetInt("shard-grain");
  if (flags.GetBool("stage1-only")) {
    // Zero growth runs: the row's timings and peak RSS measure spider
    // mining alone, not seed embedding pools or growth rounds.
    config.restarts = 0;
  }

  std::vector<int32_t> thread_counts = {1};
  const int32_t max_threads =
      std::max<int32_t>(1, static_cast<int32_t>(flags.GetInt("max-threads")));
  for (int32_t t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  double baseline_total = 0.0;
  double baseline_stage1 = 0.0;
  double baseline_growth = 0.0;
  for (int32_t threads : thread_counts) {
    // One pool per measured thread count, owned here and handed to Mine()
    // via config.pool: repeated runs at this width reuse the same workers.
    ThreadPool pool(threads);
    config.num_threads = threads;
    config.pool = &pool;
    MineResult result;
    const double seconds = bench::RunSpiderMine(graph, config, &result);
    config.pool = nullptr;
    const MineStats& s = result.stats;
    const double growth = s.stage2_seconds + s.stage3_seconds;
    if (threads == 1) {
      baseline_total = seconds;
      baseline_stage1 = s.stage1_seconds;
      baseline_growth = growth;
    }
    auto ratio = [](double base, double now) {
      return now > 0.0 ? base / now : 0.0;
    };
    std::printf(
        "{\"bench\":\"parallel_scaling\",\"model\":\"%s\",\"vertices\":%lld,"
        "\"edges\":%lld,\"threads\":%d,\"shard_grain\":%lld,"
        "\"patterns\":%zu,\"spiders\":%lld,\"scan_shards\":%lld,"
        "\"enum_shards\":%lld,\"stage1_seconds\":%.4f,"
        "\"growth_seconds\":%.4f,\"total_seconds\":%.4f,"
        "\"speedup_stage1\":%.3f,\"speedup_growth\":%.3f,"
        "\"speedup_total\":%.3f,\"store_bytes\":%lld,"
        "\"peak_rss_mb\":%.1f}\n",
        model.c_str(), static_cast<long long>(graph.NumVertices()),
        static_cast<long long>(graph.NumEdges()), threads,
        static_cast<long long>(config.stage1_shard_grain),
        result.patterns.size(), static_cast<long long>(s.num_spiders),
        static_cast<long long>(s.stage1_scan_shards),
        static_cast<long long>(s.stage1_enum_shards), s.stage1_seconds,
        growth, seconds, ratio(baseline_stage1, s.stage1_seconds),
        ratio(baseline_growth, growth), ratio(baseline_total, seconds),
        static_cast<long long>(s.stage1_store_bytes),
        static_cast<double>(bench::PeakRssBytes()) / (1024.0 * 1024.0));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
