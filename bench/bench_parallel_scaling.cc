// Parallel-scaling bench: builds one MiningSession per measured thread
// count (the cold Stage I pass) and serves queries against it, emitting
// one JSON object per run with the cold and warm latencies, the Stage I
// amortization factor (cold stage1 seconds / warm query seconds), the
// speedups against the single-thread baseline, the Stage I spider-store
// footprint and the process peak RSS. The pipeline is deterministic at any
// thread count and any Stage I shard grain, so the runs do the same
// logical work and the speedup isolates parallelization overhead.
//
//   $ ./bench_parallel_scaling --vertices=100000 --max-threads=8
//   {"bench":"parallel_scaling","threads":1,...}
//   {"bench":"parallel_scaling","threads":2,...}
//
// The ROADMAP's multi-million-vertex target runs on a scale-free graph
// with a Stage I budget, demonstrating the O(max_spiders) global-budget
// memory bound (vs the old num_labels x max_spiders transient blowup):
//
//   $ ./bench_parallel_scaling --model=ba --vertices=2000000 --max-spiders=200000 --stage1-only --max-threads=8
//
// One ThreadPool per thread count is built up front and handed to the
// session via SessionConfig::pool, so the rows measure mining, not thread
// spawning.
//
// With --concurrent-queries=K the bench instead measures the end-to-end
// serving throughput of the multi-client socket server (RunServeServer,
// tools/serve_loop.h) — real unix-socket connections, the event loop,
// framing, the admission gate and the worker pool all on the measured
// path, not just RunQuery. For each connection count C = 1, 2, 4, ... K
// it starts a fresh server with --max-inflight=C, connects C closed-loop
// clients (send one request, read the response, repeat) draining a fixed
// batch of distinct-seed queries, and emits queries/sec vs connections:
//
//   $ ./bench_parallel_scaling --vertices=20000 --concurrent-queries=8
//   {"bench":"serve_throughput","connections":1,"inflight":1,"qps":...}
//   {"bench":"serve_throughput","connections":2,"inflight":2,"qps":...}
//
// The session (and its result cache, disabled here so every query is a
// real recomputation) is shared across rows; only the server and the
// connections are rebuilt per row. --min-conn-speedup=<x> turns the last
// row's throughput_speedup_vs_1conn into a pass/fail bar (exit 1 below
// it); it is off by default because the speedup is hardware-bound.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/strings.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "tools/serve_loop.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace {

#if defined(__unix__) || defined(__APPLE__)

/// One closed-loop bench client: a connected unix-socket fd plus a read
/// buffer for newline framing. Each thread owns one; no sharing.
class BenchClient {
 public:
  static std::optional<BenchClient> Connect(const std::string& path) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return std::nullopt;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return std::nullopt;
    }
    return BenchClient(fd);
  }

  BenchClient(BenchClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  BenchClient(const BenchClient&) = delete;
  BenchClient& operator=(const BenchClient&) = delete;
  BenchClient& operator=(BenchClient&&) = delete;
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Next newline-terminated response (without the newline); "" on EOF.
  std::string ReadLine() {
    for (;;) {
      const size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::string();
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  explicit BenchClient(int fd) : fd_(fd) {}
  int fd_;
  std::string buffer_;
};

#endif  // unix

int Run(int argc, const char* const* argv) {
  using namespace spidermine;
  FlagSet flags("bench_parallel_scaling",
                "SpiderMine stage timings vs thread count (JSON rows)");
  flags.AddString("model", "er", "background graph model: er | ba")
      .AddInt("vertices", 100000, "background graph vertices")
      .AddDouble("avg-degree", 2.5, "background average degree (er)")
      .AddInt("ba-edges", 2, "edges per new vertex (ba)")
      .AddInt("labels", 60, "vertex label count")
      .AddInt("inject-vertices", 16, "planted pattern size (0 = none)")
      .AddInt("inject-count", 4, "planted embeddings")
      .AddInt("support", 3, "support threshold sigma")
      .AddInt("k", 10, "top-K")
      .AddInt("dmax", 4, "pattern diameter bound")
      .AddInt("seed", 42, "rng seed (graph and miner)")
      .AddInt("seed-count", 64, "seed spider draw M (0 = paper formula)")
      .AddInt("max-spiders", 0, "Stage I global spider budget (0 = none)")
      .AddInt("shard-grain", 0, "Stage I vertex-range shard grain (0 = auto)")
      .AddBool("stage1-only", false,
               "stop after Stage I (memory/scaling runs on huge graphs)")
      .AddInt("max-threads", 8, "largest thread count measured (doubling)")
      .AddInt("concurrent-queries", 0,
              "serve-throughput mode: drive the socket server with 1,2,4.. "
              "up to this many concurrent client connections (0 = off)")
      .AddInt("queries-per-round", 0,
              "total queries per serve-throughput row (0 = 4x the largest "
              "connection count)")
      .AddDouble("min-conn-speedup", 0.0,
                 "fail (exit 1) if the last serve-throughput row's speedup "
                 "vs 1 connection is below this (0 = no bar)");
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const std::string model = flags.GetString("model");
  GraphBuilder builder =
      model == "ba"
          ? GenerateBarabasiAlbert(
                flags.GetInt("vertices"),
                static_cast<int32_t>(flags.GetInt("ba-edges")),
                static_cast<LabelId>(flags.GetInt("labels")), &rng)
          : GenerateErdosRenyi(flags.GetInt("vertices"),
                               flags.GetDouble("avg-degree"),
                               static_cast<LabelId>(flags.GetInt("labels")),
                               &rng);
  if (flags.GetInt("inject-vertices") > 0) {
    Pattern planted = RandomConnectedPattern(
        static_cast<int32_t>(flags.GetInt("inject-vertices")), 0.1,
        static_cast<LabelId>(flags.GetInt("labels")), &rng);
    PatternInjector injector(&builder);
    status = injector.Inject(
        planted, static_cast<int32_t>(flags.GetInt("inject-count")), &rng);
    if (!status.ok()) {
      std::fprintf(stderr, "inject: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  Result<LabeledGraph> built = builder.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const LabeledGraph& graph = *built;

  const auto concurrent =
      static_cast<int32_t>(flags.GetInt("concurrent-queries"));
  bench::Banner("parallel_scaling",
                concurrent > 0
                    ? "socket-server throughput (queries/sec) vs concurrent "
                      "client connections"
                    : "cold stage1 + warm query seconds vs --threads; "
                      "deterministic workload");

  SessionConfig session_config;
  session_config.min_support = flags.GetInt("support");
  session_config.max_spiders = flags.GetInt("max-spiders");
  session_config.stage1_shard_grain = flags.GetInt("shard-grain");
  TopKQuery query;
  query.k = static_cast<int32_t>(flags.GetInt("k"));
  query.dmax = static_cast<int32_t>(flags.GetInt("dmax"));
  query.vmin = 8;
  query.rng_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  query.seed_count_override = flags.GetInt("seed-count");
  const bool stage1_only = flags.GetBool("stage1-only");

  if (concurrent > 0) {
#if defined(__unix__) || defined(__APPLE__)
    // ---- Serve-throughput mode: the real multi-client socket server. ----
    // One session shared across rows; per row a fresh RunServeServer with
    // --max-inflight matching the connection count, C closed-loop clients
    // over real unix-socket connections. Event loop, framing, admission
    // and worker-pool dispatch are all inside the measured wall time.
    session_config.num_threads = 0;
    std::optional<MiningSession> session;
    const double cold_seconds =
        bench::BuildMiningSession(graph, session_config, &session);
    if (!session.has_value()) return 1;
    int64_t total_queries = flags.GetInt("queries-per-round");
    if (total_queries <= 0) total_queries = 4LL * concurrent;
    const std::string socket_path =
        "/tmp/spidermine_bench_serve_" + std::to_string(::getpid()) + ".sock";
    double baseline_qps = 0.0;
    double last_speedup = 0.0;
    for (int32_t connections = 1; connections <= concurrent;
         connections *= 2) {
      cli::ServeTransportOptions transport;
      transport.socket_path = socket_path;
      std::promise<void> ready;
      transport.on_ready =
          [&ready](const cli::ServeEndpoints&) { ready.set_value(); };
      cli::ServeOptions serve_options;
      serve_options.max_inflight = connections;
      serve_options.summary = false;
      cli::ServeStats serve_stats;
      std::ostringstream server_err;
      Status server_status;
      std::thread server([&] {
        server_status = cli::RunServeServer(*session, transport, server_err,
                                            serve_options, &serve_stats);
      });
      ready.get_future().wait();

      std::atomic<int64_t> next{0};
      std::atomic<int64_t> failed{0};
      WallTimer timer;
      std::vector<std::thread> clients;
      clients.reserve(static_cast<size_t>(connections));
      for (int32_t c = 0; c < connections; ++c) {
        // Closed-loop clients drain a shared work list of distinct-seed
        // queries (a mixed workload: no two requests share a cache line).
        clients.emplace_back([&, c] {
          std::optional<BenchClient> client =
              BenchClient::Connect(socket_path);
          if (!client.has_value()) {
            failed.fetch_add(total_queries);  // poison the row visibly
            return;
          }
          for (;;) {
            const int64_t i = next.fetch_add(1);
            if (i >= total_queries) return;
            const std::string request = StrCat(
                "{\"id\": ", i + 1, ", \"k\": ", query.k,
                ", \"dmax\": ", query.dmax, ", \"vmin\": ", query.vmin,
                ", \"seed\": ", query.rng_seed + static_cast<uint64_t>(i),
                ", \"seed_count\": ", query.seed_count_override, "}\n");
            if (!client->Send(request)) {
              failed.fetch_add(1);
              return;
            }
            const std::string response = client->ReadLine();
            if (response.find("\"ok\":true") == std::string::npos) {
              failed.fetch_add(1);
            }
          }
          (void)c;
        });
      }
      for (std::thread& client : clients) client.join();
      const double wall = timer.ElapsedSeconds();

      std::optional<BenchClient> controller =
          BenchClient::Connect(socket_path);
      if (controller.has_value()) {
        controller->Send("{\"cmd\": \"shutdown\"}\n");
        (void)controller->ReadLine();  // the shutdown ack
      }
      server.join();
      if (!server_status.ok()) {
        std::fprintf(stderr, "serve: %s\n%s",
                     server_status.ToString().c_str(),
                     server_err.str().c_str());
        return 1;
      }

      // `answered` counts every ok response including the shutdown ack;
      // the row reports real queries only.
      const int64_t served =
          serve_stats.answered - (serve_stats.shutdown_requested ? 1 : 0);
      const double qps =
          wall > 0.0 ? static_cast<double>(served) / wall : 0.0;
      if (connections == 1) baseline_qps = qps;
      last_speedup = baseline_qps > 0.0 ? qps / baseline_qps : 0.0;
      std::printf(
          "{\"bench\":\"serve_throughput\",\"model\":\"%s\","
          "\"vertices\":%lld,\"edges\":%lld,\"pool_threads\":%d,"
          "\"connections\":%d,\"inflight\":%d,\"queries\":%lld,"
          "\"failed\":%lld,\"rejected\":%lld,\"cold_seconds\":%.4f,"
          "\"wall_seconds\":%.4f,\"qps\":%.3f,"
          "\"throughput_speedup_vs_1conn\":%.3f}\n",
          model.c_str(), static_cast<long long>(graph.NumVertices()),
          static_cast<long long>(graph.NumEdges()),
          ThreadPool::DefaultThreads(), connections, connections,
          static_cast<long long>(served),
          static_cast<long long>(failed.load()),
          static_cast<long long>(serve_stats.rejected), cold_seconds, wall,
          qps, last_speedup);
      std::fflush(stdout);
      if (failed.load() > 0) {
        std::fprintf(stderr, "serve_throughput: %lld failed responses\n",
                     static_cast<long long>(failed.load()));
        return 1;
      }
    }
    const double bar = flags.GetDouble("min-conn-speedup");
    if (bar > 0.0 && last_speedup < bar) {
      std::fprintf(stderr,
                   "serve_throughput: speedup %.3f below --min-conn-speedup "
                   "%.3f\n",
                   last_speedup, bar);
      return 1;
    }
    return 0;
#else
    std::fprintf(stderr,
                 "--concurrent-queries needs unix sockets; unsupported on "
                 "this platform\n");
    return 2;
#endif
  }

  std::vector<int32_t> thread_counts = {1};
  const int32_t max_threads =
      std::max<int32_t>(1, static_cast<int32_t>(flags.GetInt("max-threads")));
  for (int32_t t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  double baseline_total = 0.0;
  double baseline_stage1 = 0.0;
  double baseline_query = 0.0;
  for (int32_t threads : thread_counts) {
    // One pool per measured thread count, owned here and handed to the
    // session via SessionConfig::pool: its queries reuse the same workers.
    ThreadPool pool(threads);
    session_config.num_threads = threads;
    session_config.pool = &pool;
    std::optional<MiningSession> session;
    // Cold: the one-time Stage I pass (spider mining + index build).
    const double cold_seconds =
        bench::BuildMiningSession(graph, session_config, &session);
    session_config.pool = nullptr;
    if (!session.has_value()) return 1;
    const MineStats& s1 = session->stage1_stats();
    // Warm: one full top-K query served from the cached store. With
    // --stage1-only the row measures spider mining alone (no growth, no
    // seed embedding pools), matching the memory-bound experiments.
    QueryResult result;
    double query_seconds = 0.0;
    if (!stage1_only) {
      query_seconds = bench::RunSessionQuery(&*session, query, &result);
    }
    const double seconds = cold_seconds + query_seconds;
    const MineStats& qs = result.stats;
    const double growth = qs.stage2_seconds + qs.stage3_seconds;
    if (threads == 1) {
      baseline_total = seconds;
      baseline_stage1 = s1.stage1_seconds;
      baseline_query = query_seconds;
    }
    auto ratio = [](double base, double now) {
      return now > 0.0 ? base / now : 0.0;
    };
    std::printf(
        "{\"bench\":\"parallel_scaling\",\"model\":\"%s\",\"vertices\":%lld,"
        "\"edges\":%lld,\"threads\":%d,\"shard_grain\":%lld,"
        "\"patterns\":%zu,\"spiders\":%lld,\"scan_shards\":%lld,"
        "\"enum_shards\":%lld,\"stage1_seconds\":%.4f,"
        "\"growth_seconds\":%.4f,\"total_seconds\":%.4f,"
        "\"cold_seconds\":%.4f,\"warm_query_seconds\":%.4f,"
        "\"stage1_amortization\":%.2f,"
        "\"speedup_stage1\":%.3f,\"speedup_query\":%.3f,"
        "\"speedup_total\":%.3f,\"store_bytes\":%lld,"
        "\"peak_rss_mb\":%.1f}\n",
        model.c_str(), static_cast<long long>(graph.NumVertices()),
        static_cast<long long>(graph.NumEdges()), threads,
        static_cast<long long>(session_config.stage1_shard_grain),
        result.patterns.size(), static_cast<long long>(s1.num_spiders),
        static_cast<long long>(s1.stage1_scan_shards),
        static_cast<long long>(s1.stage1_enum_shards), s1.stage1_seconds,
        growth, seconds, cold_seconds, query_seconds,
        ratio(s1.stage1_seconds, query_seconds),
        ratio(baseline_stage1, s1.stage1_seconds),
        ratio(baseline_query, query_seconds),
        ratio(baseline_total, seconds),
        static_cast<long long>(s1.stage1_store_bytes),
        static_cast<double>(bench::PeakRssBytes()) / (1024.0 * 1024.0));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
