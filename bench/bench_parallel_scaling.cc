// Parallel-scaling bench: builds one MiningSession per measured thread
// count (the cold Stage I pass) and serves queries against it, emitting
// one JSON object per run with the cold and warm latencies, the Stage I
// amortization factor (cold stage1 seconds / warm query seconds), the
// speedups against the single-thread baseline, the Stage I spider-store
// footprint and the process peak RSS. The pipeline is deterministic at any
// thread count and any Stage I shard grain, so the runs do the same
// logical work and the speedup isolates parallelization overhead.
//
//   $ ./bench_parallel_scaling --vertices=100000 --max-threads=8
//   {"bench":"parallel_scaling","threads":1,...}
//   {"bench":"parallel_scaling","threads":2,...}
//
// The ROADMAP's multi-million-vertex target runs on a scale-free graph
// with a Stage I budget, demonstrating the O(max_spiders) global-budget
// memory bound (vs the old num_labels x max_spiders transient blowup):
//
//   $ ./bench_parallel_scaling --model=ba --vertices=2000000 --max-spiders=200000 --stage1-only --max-threads=8
//
// One ThreadPool per thread count is built up front and handed to the
// session via SessionConfig::pool, so the rows measure mining, not thread
// spawning.
//
// With --concurrent-queries=K the bench instead measures the serving
// throughput of ONE session under concurrent load (RunQuery is const and
// thread-safe): for each in-flight count 1, 2, 4, ... K it fires a fixed
// batch of distinct-seed queries from that many caller threads and emits
// queries/sec vs in-flight JSON — the trajectory the `serve` subcommand's
// win is tracked by:
//
//   $ ./bench_parallel_scaling --vertices=20000 --concurrent-queries=8
//   {"bench":"concurrent_queries","inflight":1,"qps":...}
//   {"bench":"concurrent_queries","inflight":2,"qps":...}

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

namespace {

int Run(int argc, const char* const* argv) {
  using namespace spidermine;
  FlagSet flags("bench_parallel_scaling",
                "SpiderMine stage timings vs thread count (JSON rows)");
  flags.AddString("model", "er", "background graph model: er | ba")
      .AddInt("vertices", 100000, "background graph vertices")
      .AddDouble("avg-degree", 2.5, "background average degree (er)")
      .AddInt("ba-edges", 2, "edges per new vertex (ba)")
      .AddInt("labels", 60, "vertex label count")
      .AddInt("inject-vertices", 16, "planted pattern size (0 = none)")
      .AddInt("inject-count", 4, "planted embeddings")
      .AddInt("support", 3, "support threshold sigma")
      .AddInt("k", 10, "top-K")
      .AddInt("dmax", 4, "pattern diameter bound")
      .AddInt("seed", 42, "rng seed (graph and miner)")
      .AddInt("seed-count", 64, "seed spider draw M (0 = paper formula)")
      .AddInt("max-spiders", 0, "Stage I global spider budget (0 = none)")
      .AddInt("shard-grain", 0, "Stage I vertex-range shard grain (0 = auto)")
      .AddBool("stage1-only", false,
               "stop after Stage I (memory/scaling runs on huge graphs)")
      .AddInt("max-threads", 8, "largest thread count measured (doubling)")
      .AddInt("concurrent-queries", 0,
              "serving-throughput mode: measure queries/sec on ONE session "
              "at 1,2,4.. up to this many in-flight queries (0 = off)")
      .AddInt("queries-per-round", 0,
              "total queries per concurrent-queries row (0 = 4x the largest "
              "in-flight count)");
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const std::string model = flags.GetString("model");
  GraphBuilder builder =
      model == "ba"
          ? GenerateBarabasiAlbert(
                flags.GetInt("vertices"),
                static_cast<int32_t>(flags.GetInt("ba-edges")),
                static_cast<LabelId>(flags.GetInt("labels")), &rng)
          : GenerateErdosRenyi(flags.GetInt("vertices"),
                               flags.GetDouble("avg-degree"),
                               static_cast<LabelId>(flags.GetInt("labels")),
                               &rng);
  if (flags.GetInt("inject-vertices") > 0) {
    Pattern planted = RandomConnectedPattern(
        static_cast<int32_t>(flags.GetInt("inject-vertices")), 0.1,
        static_cast<LabelId>(flags.GetInt("labels")), &rng);
    PatternInjector injector(&builder);
    status = injector.Inject(
        planted, static_cast<int32_t>(flags.GetInt("inject-count")), &rng);
    if (!status.ok()) {
      std::fprintf(stderr, "inject: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  Result<LabeledGraph> built = builder.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const LabeledGraph& graph = *built;

  const auto concurrent =
      static_cast<int32_t>(flags.GetInt("concurrent-queries"));
  bench::Banner("parallel_scaling",
                concurrent > 0
                    ? "serving throughput (queries/sec) vs in-flight "
                      "queries on one session"
                    : "cold stage1 + warm query seconds vs --threads; "
                      "deterministic workload");

  SessionConfig session_config;
  session_config.min_support = flags.GetInt("support");
  session_config.max_spiders = flags.GetInt("max-spiders");
  session_config.stage1_shard_grain = flags.GetInt("shard-grain");
  TopKQuery query;
  query.k = static_cast<int32_t>(flags.GetInt("k"));
  query.dmax = static_cast<int32_t>(flags.GetInt("dmax"));
  query.vmin = 8;
  query.rng_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  query.seed_count_override = flags.GetInt("seed-count");
  const bool stage1_only = flags.GetBool("stage1-only");

  if (concurrent > 0) {
    // ---- Serving-throughput mode: one session, concurrent RunQuery. ----
    // Full hardware parallelism inside the session pool; the sweep varies
    // only how many queries are in flight at once.
    session_config.num_threads = 0;
    std::optional<MiningSession> session;
    const double cold_seconds =
        bench::BuildMiningSession(graph, session_config, &session);
    if (!session.has_value()) return 1;
    int64_t total_queries = flags.GetInt("queries-per-round");
    if (total_queries <= 0) total_queries = 4LL * concurrent;
    double baseline_qps = 0.0;
    for (int32_t inflight = 1; inflight <= concurrent; inflight *= 2) {
      const SessionServingStats before = session->serving_stats();
      std::atomic<int64_t> next{0};
      std::atomic<int64_t> failed{0};
      WallTimer timer;
      std::vector<std::thread> callers;
      callers.reserve(static_cast<size_t>(inflight));
      for (int32_t c = 0; c < inflight; ++c) {
        // Callers drain a shared work list of distinct-seed queries (a
        // mixed serving workload, not one cached query repeated).
        callers.emplace_back([&session, &query, &next, &failed,
                              total_queries] {
          for (;;) {
            const int64_t i = next.fetch_add(1);
            if (i >= total_queries) return;
            TopKQuery q = query;
            q.rng_seed = query.rng_seed + static_cast<uint64_t>(i);
            if (!session->RunQuery(q).ok()) failed.fetch_add(1);
          }
        });
      }
      for (std::thread& caller : callers) caller.join();
      const double wall = timer.ElapsedSeconds();
      const SessionServingStats after = session->serving_stats();
      const int64_t served = after.queries_run - before.queries_run;
      const double qps = wall > 0.0 ? static_cast<double>(served) / wall : 0.0;
      const double mean_latency =
          served > 0
              ? (after.total_query_seconds - before.total_query_seconds) /
                    static_cast<double>(served)
              : 0.0;
      if (inflight == 1) baseline_qps = qps;
      std::printf(
          "{\"bench\":\"concurrent_queries\",\"model\":\"%s\","
          "\"vertices\":%lld,\"edges\":%lld,\"pool_threads\":%d,"
          "\"inflight\":%d,\"queries\":%lld,\"failed\":%lld,"
          "\"cold_seconds\":%.4f,\"wall_seconds\":%.4f,\"qps\":%.3f,"
          "\"mean_query_seconds\":%.4f,\"throughput_speedup\":%.3f}\n",
          model.c_str(), static_cast<long long>(graph.NumVertices()),
          static_cast<long long>(graph.NumEdges()),
          ThreadPool::DefaultThreads(), inflight,
          static_cast<long long>(served),
          static_cast<long long>(failed.load()), cold_seconds, wall, qps,
          mean_latency, baseline_qps > 0.0 ? qps / baseline_qps : 0.0);
      std::fflush(stdout);
    }
    return 0;
  }

  std::vector<int32_t> thread_counts = {1};
  const int32_t max_threads =
      std::max<int32_t>(1, static_cast<int32_t>(flags.GetInt("max-threads")));
  for (int32_t t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  double baseline_total = 0.0;
  double baseline_stage1 = 0.0;
  double baseline_query = 0.0;
  for (int32_t threads : thread_counts) {
    // One pool per measured thread count, owned here and handed to the
    // session via SessionConfig::pool: its queries reuse the same workers.
    ThreadPool pool(threads);
    session_config.num_threads = threads;
    session_config.pool = &pool;
    std::optional<MiningSession> session;
    // Cold: the one-time Stage I pass (spider mining + index build).
    const double cold_seconds =
        bench::BuildMiningSession(graph, session_config, &session);
    session_config.pool = nullptr;
    if (!session.has_value()) return 1;
    const MineStats& s1 = session->stage1_stats();
    // Warm: one full top-K query served from the cached store. With
    // --stage1-only the row measures spider mining alone (no growth, no
    // seed embedding pools), matching the memory-bound experiments.
    QueryResult result;
    double query_seconds = 0.0;
    if (!stage1_only) {
      query_seconds = bench::RunSessionQuery(&*session, query, &result);
    }
    const double seconds = cold_seconds + query_seconds;
    const MineStats& qs = result.stats;
    const double growth = qs.stage2_seconds + qs.stage3_seconds;
    if (threads == 1) {
      baseline_total = seconds;
      baseline_stage1 = s1.stage1_seconds;
      baseline_query = query_seconds;
    }
    auto ratio = [](double base, double now) {
      return now > 0.0 ? base / now : 0.0;
    };
    std::printf(
        "{\"bench\":\"parallel_scaling\",\"model\":\"%s\",\"vertices\":%lld,"
        "\"edges\":%lld,\"threads\":%d,\"shard_grain\":%lld,"
        "\"patterns\":%zu,\"spiders\":%lld,\"scan_shards\":%lld,"
        "\"enum_shards\":%lld,\"stage1_seconds\":%.4f,"
        "\"growth_seconds\":%.4f,\"total_seconds\":%.4f,"
        "\"cold_seconds\":%.4f,\"warm_query_seconds\":%.4f,"
        "\"stage1_amortization\":%.2f,"
        "\"speedup_stage1\":%.3f,\"speedup_query\":%.3f,"
        "\"speedup_total\":%.3f,\"store_bytes\":%lld,"
        "\"peak_rss_mb\":%.1f}\n",
        model.c_str(), static_cast<long long>(graph.NumVertices()),
        static_cast<long long>(graph.NumEdges()), threads,
        static_cast<long long>(session_config.stage1_shard_grain),
        result.patterns.size(), static_cast<long long>(s1.num_spiders),
        static_cast<long long>(s1.stage1_scan_shards),
        static_cast<long long>(s1.stage1_enum_shards), s1.stage1_seconds,
        growth, seconds, cold_seconds, query_seconds,
        ratio(s1.stage1_seconds, query_seconds),
        ratio(baseline_stage1, s1.stage1_seconds),
        ratio(baseline_query, query_seconds),
        ratio(baseline_total, seconds),
        static_cast<long long>(s1.stage1_store_bytes),
        static_cast<double>(bench::PeakRssBytes()) / (1024.0 * 1024.0));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
