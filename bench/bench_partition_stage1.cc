// Out-of-core partitioned Stage I: wall time and PER-PROCESS peak RSS of
// the partition -> per-partition mine -> merge pipeline vs the single-node
// baseline on a Barabasi-Albert graph.
//
// Every phase runs in a FORKED child measured by wait4's rusage, so each
// reported peak RSS is that phase's own high-water mark — the parent never
// loads the graph, exactly like the `stage1 --workers` driver. The workers
// run sequentially on purpose: the bench measures the memory bound of one
// worker, not machine throughput. The exit bar is exactness: the merged
// artifact must be byte-identical to the baseline's.
//
// Honest caveat recorded in the JSON: per-worker RSS is bounded by the
// partition PLUS its threshold-1 local enumeration, and on a hub-heavy BA
// partition the halo (and hence the local star set) can approach the full
// graph's — the bound the pipeline guarantees is "never the whole graph in
// one heap at once", not a 1/P split of the baseline.
//
// Output: a single JSON object on stdout (committed as
// BENCH_partition_stage1.json by tools/run_bench_trajectory.sh).

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "gen/barabasi_albert.h"
#include "graph/binary_io.h"
#include "graph/graph_builder.h"
#include "graph/graph_partition.h"
#include "spidermine/session.h"
#include "spidermine/stage1_partition.h"

namespace spidermine::bench {
namespace {

struct PhaseResult {
  double seconds = 0;
  int64_t peak_rss_bytes = 0;
  int exit_code = -1;
};

/// Runs \p body in a forked child and reports ITS wall time and peak RSS
/// (ru_maxrss of the child, not of this process).
PhaseResult RunPhase(const char* name, const std::function<int()>& body) {
  std::fprintf(stderr, "phase %s...\n", name);
  WallTimer timer;
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return {};
  }
  if (pid == 0) {
    ::_exit(body());
  }
  int status = 0;
  struct rusage usage {};
  if (::wait4(pid, &status, 0, &usage) < 0) {
    std::perror("wait4");
    return {};
  }
  PhaseResult result;
  result.seconds = timer.ElapsedSeconds();
  result.peak_rss_bytes = static_cast<int64_t>(usage.ru_maxrss) * 1024;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
  std::fprintf(stderr, "phase %s: %.2fs, peak rss %lld MiB, exit %d\n",
               name, result.seconds,
               static_cast<long long>(result.peak_rss_bytes >> 20),
               result.exit_code);
  return result;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

int Main(int argc, char** argv) {
  FlagSet flags("bench_partition_stage1",
                "partitioned vs single-node Stage I: time, per-process "
                "RSS, byte identity");
  flags.AddInt("vertices", 2'000'000, "BA graph vertices")
      .AddInt("ba-edges", 2, "edges per new vertex")
      .AddInt("labels", 24, "vertex label alphabet")
      .AddInt("partitions", 4, "partition count")
      .AddInt("support", 3, "support floor sigma")
      .AddInt("max-leaves", 4, "max star leaves")
      .AddInt("threads", 0, "threads per phase (0 = all cores)");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  const int64_t vertices = flags.GetInt("vertices");
  const int32_t partitions =
      static_cast<int32_t>(flags.GetInt("partitions"));
  const int64_t support = flags.GetInt("support");
  const int32_t max_leaves =
      static_cast<int32_t>(flags.GetInt("max-leaves"));
  const int32_t threads = static_cast<int32_t>(flags.GetInt("threads"));

  std::fprintf(stderr,
               "# partition_stage1: out-of-core partitioned Stage I vs "
               "single-node (%lld vertices, %d partitions)\n",
               static_cast<long long>(vertices), partitions);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string graph_path = (dir / "bench_partition.smg").string();
  const std::string single_path = (dir / "bench_partition_single.sm2").string();
  const std::string merged_path = (dir / "bench_partition_merged.sm2").string();
  auto part_path = [&](int32_t p) {
    return (dir / StrCat("bench_partition_", p, ".smgp")).string();
  };
  auto partial_path = [&](int32_t p) {
    return (dir / StrCat("bench_partition_", p, ".sm2p")).string();
  };

  // Generate in a child too, so the parent's RSS stays flat for the whole
  // bench (the graph never lives in this process).
  {
    PhaseResult gen = RunPhase("generate", [&] {
      Rng rng(20260808);
      GraphBuilder builder = GenerateBarabasiAlbert(
          vertices, static_cast<int32_t>(flags.GetInt("ba-edges")),
          static_cast<LabelId>(flags.GetInt("labels")), &rng);
      Result<LabeledGraph> graph = builder.Build();
      if (!graph.ok()) return 1;
      return SaveGraphBinary(*graph, graph_path).ok() ? 0 : 1;
    });
    if (gen.exit_code != 0) return 1;
  }

  // Single-node baseline: the whole graph + the whole store in one heap.
  const PhaseResult baseline = RunPhase("baseline", [&] {
    Result<LabeledGraph> graph = LoadGraphBinary(graph_path);
    if (!graph.ok()) return 1;
    SessionConfig config;
    config.min_support = support;
    config.max_star_leaves = max_leaves;
    config.num_threads = threads;
    Result<MiningSession> session = MiningSession::Create(&*graph, config);
    if (!session.ok()) return 1;
    return session->SaveStage1(single_path).ok() ? 0 : 1;
  });
  if (baseline.exit_code != 0) return 1;

  // Partition phase: the only out-of-core step that touches the full
  // graph (one pass, then it is freed with the child).
  const PhaseResult partition = RunPhase("partition", [&] {
    Result<LabeledGraph> graph = LoadGraphBinary(graph_path);
    if (!graph.ok()) return 1;
    Result<PartitionPlan> plan = MakePartitionPlan(*graph, partitions, 1);
    if (!plan.ok()) return 1;
    for (int32_t p = 0; p < partitions; ++p) {
      Result<GraphPartition> part = BuildGraphPartition(*graph, *plan, p);
      if (!part.ok()) return 1;
      if (!SaveGraphPartition(*part, part_path(p)).ok()) return 1;
    }
    return 0;
  });
  if (partition.exit_code != 0) return 1;

  // One worker per partition, sequential: each child's RSS is the memory
  // bound of a `stage1 --workers` worker process.
  std::vector<PhaseResult> workers;
  for (int32_t p = 0; p < partitions; ++p) {
    workers.push_back(RunPhase(StrCat("worker_", p).c_str(), [&] {
      Result<GraphPartition> part = LoadGraphPartition(part_path(p));
      if (!part.ok()) return 1;
      Stage1PartialConfig config;
      config.min_support = support;
      config.max_star_leaves = max_leaves;
      ThreadPool pool(threads > 0 ? threads : ThreadPool::DefaultThreads());
      Result<Stage1PartialResult> partial =
          MineStage1Partial(*part, config, &pool);
      if (!partial.ok()) return 1;
      Stage1PartialMeta meta;
      meta.min_support = support;
      meta.max_star_leaves = max_leaves;
      meta.num_graph_vertices = part->parent_num_vertices;
      meta.graph_hash = part->parent_hash;
      meta.partition_index = p;
      meta.num_partitions = partitions;
      meta.owned_begin = part->owned_begin;
      meta.owned_end = part->owned_end;
      return SaveStage1Partial(partial->store, meta, partial_path(p)).ok()
                 ? 0
                 : 1;
    }));
    if (workers.back().exit_code != 0) return 1;
  }

  // Merge: graph-free, streaming over the mapped partials.
  const PhaseResult merge = RunPhase("merge", [&] {
    std::vector<std::string> paths;
    for (int32_t p = 0; p < partitions; ++p) {
      paths.push_back(partial_path(p));
    }
    return MergeStage1PartialsToFile(paths, merged_path).ok() ? 0 : 1;
  });
  if (merge.exit_code != 0) return 1;

  const std::string single_bytes = ReadAll(single_path);
  const bool byte_identical =
      !single_bytes.empty() && single_bytes == ReadAll(merged_path);

  int64_t max_worker_rss = 0;
  double workers_total_seconds = 0;
  for (const PhaseResult& worker : workers) {
    max_worker_rss = std::max(max_worker_rss, worker.peak_rss_bytes);
    workers_total_seconds += worker.seconds;
  }

  std::printf(
      "{\n"
      "  \"bench\": \"partition_stage1\",\n"
      "  \"vertices\": %lld,\n"
      "  \"partitions\": %d,\n"
      "  \"support\": %lld,\n"
      "  \"max_leaves\": %d,\n"
      "  \"artifact_bytes\": %lld,\n"
      "  \"byte_identical\": %s,\n"
      "  \"baseline\": {\"seconds\": %.2f, \"peak_rss_bytes\": %lld},\n"
      "  \"partition_phase\": {\"seconds\": %.2f, \"peak_rss_bytes\": "
      "%lld},\n"
      "  \"workers\": [",
      static_cast<long long>(vertices), partitions,
      static_cast<long long>(support), max_leaves,
      static_cast<long long>(single_bytes.size()),
      byte_identical ? "true" : "false", baseline.seconds,
      static_cast<long long>(baseline.peak_rss_bytes), partition.seconds,
      static_cast<long long>(partition.peak_rss_bytes));
  for (size_t p = 0; p < workers.size(); ++p) {
    std::printf("%s\n    {\"seconds\": %.2f, \"peak_rss_bytes\": %lld}",
                p == 0 ? "" : ",", workers[p].seconds,
                static_cast<long long>(workers[p].peak_rss_bytes));
  }
  std::printf(
      "\n  ],\n"
      "  \"workers_total_seconds\": %.2f,\n"
      "  \"max_worker_rss_bytes\": %lld,\n"
      "  \"merge\": {\"seconds\": %.2f, \"peak_rss_bytes\": %lld},\n"
      "  \"max_worker_rss_over_baseline\": %.3f\n"
      "}\n",
      workers_total_seconds, static_cast<long long>(max_worker_rss),
      merge.seconds, static_cast<long long>(merge.peak_rss_bytes),
      baseline.peak_rss_bytes > 0
          ? static_cast<double>(max_worker_rss) /
                static_cast<double>(baseline.peak_rss_bytes)
          : 0.0);

  std::filesystem::remove(graph_path);
  std::filesystem::remove(single_path);
  std::filesystem::remove(merged_path);
  for (int32_t p = 0; p < partitions; ++p) {
    std::filesystem::remove(part_path(p));
    std::filesystem::remove(partial_path(p));
  }
  // Exit bar: exactness. Perf numbers are trajectory records; a merged
  // artifact that differs from the baseline is a bug.
  return byte_identical ? 0 : 2;
}

}  // namespace
}  // namespace spidermine::bench

int main(int argc, char** argv) {
  return spidermine::bench::Main(argc, argv);
}
