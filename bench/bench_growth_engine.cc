// The embedding-list growth engine vs the per-candidate VF2 closure path
// (the Stage II/III hot path it replaces).
//
// Workload: a sparse 300k-vertex ER graph with planted 16-vertex patterns
// and a wide closure window (k=64 -> 512 candidates). On a graph this size
// every closure candidate's from-scratch VF2 search must filter thousands
// of label-compatible roots, while the carried complete list — maintained
// incrementally through seeding, spider extensions and merge joins — hands
// closure E[P] for free. Growth itself never reads the carried lists, so
// the two modes execute byte-identical Stages II/III; the bench asserts
// the final top-K transcripts match across every mode x thread-count cell
// before reporting a single number.
//
// Metrics: per (threads, budget) the end-to-end query seconds and the
// post-growth seconds (total - stage II - stage III: closure plus the
// mode-independent accumulate/dedup epilogue — attributing the epilogue to
// closure UNDERSTATES the engine's speedup, never inflates it). The
// headline is the post-growth speedup at 8 threads; the acceptance bar is
// >= 2x (exit 2 when the bench runs but misses it).
//
// Output: a single JSON object on stdout (committed as
// BENCH_growth_engine.json by tools/run_bench_trajectory.sh).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/dfs_code.h"
#include "spidermine/session.h"

namespace spidermine::bench {
namespace {

constexpr int32_t kVertices = 300'000;
constexpr double kAvgDegree = 2.0;
constexpr int32_t kLabels = 8;
constexpr int32_t kInjectVertices = 16;
constexpr int32_t kInjectCopies = 4;
constexpr int64_t kSupport = 3;
constexpr int32_t kTopK = 64;  // closure window resolves to 8 * 64 = 512
constexpr int32_t kRestarts = 2;
constexpr int64_t kEngineBudget = 4096;
constexpr int32_t kRepeats = 2;  // per cell; min is reported
constexpr double kBar = 2.0;

LabeledGraph BuildGraph() {
  Rng rng(11);
  GraphBuilder builder =
      GenerateErdosRenyi(kVertices, kAvgDegree, kLabels, &rng);
  Pattern planted =
      RandomConnectedPattern(kInjectVertices, 0.15, kLabels, &rng);
  PatternInjector injector(&builder);
  if (!injector.Inject(planted, kInjectCopies, &rng).ok()) std::abort();
  return std::move(builder.Build()).value();
}

TopKQuery BenchQuery(int64_t embedding_list_budget) {
  TopKQuery query;
  query.min_support = kSupport;
  query.k = kTopK;
  query.dmax = 4;
  query.rng_seed = 7;
  query.restarts = kRestarts;
  query.embedding_list_budget = embedding_list_budget;
  return query;
}

/// Canonical byte transcript of a result list (minimum DFS codes +
/// supports, in order) — the cross-mode identity check.
std::string Transcript(const std::vector<MinedPattern>& patterns) {
  std::string out;
  for (const MinedPattern& p : patterns) {
    out += StrCat("V=", p.NumVertices(), " E=", p.NumEdges(),
                  " sup=", p.support, " emb=", p.embeddings.size(), " ",
                  DfsCodeToString(MinimumDfsCode(p.pattern)), "\n");
  }
  return out;
}

struct Cell {
  int32_t threads = 0;
  int64_t budget = 0;
  double total_seconds = 0.0;
  double post_growth_seconds = 0.0;
  int64_t emb_carried = 0;
  int64_t vf2_fallbacks = 0;
  int64_t patterns = 0;
};

int Main() {
  std::fprintf(stderr, "building %d-vertex bench graph...\n", kVertices);
  LabeledGraph graph = BuildGraph();

  std::vector<Cell> cells;
  std::string reference_transcript;
  for (int32_t threads : {1, 2, 8}) {
    SessionConfig config;
    config.min_support = kSupport;
    config.num_threads = threads;
    Result<MiningSession> session = MiningSession::Create(&graph, config);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    for (int64_t budget : {int64_t{0}, kEngineBudget}) {
      Cell cell;
      cell.threads = threads;
      cell.budget = budget;
      for (int32_t rep = 0; rep < kRepeats; ++rep) {
        Result<QueryResult> result = session->RunQuery(BenchQuery(budget));
        if (!result.ok()) {
          std::fprintf(stderr, "query: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        const MineStats& stats = result->stats;
        const double post_growth = stats.total_seconds -
                                   stats.stage2_seconds -
                                   stats.stage3_seconds;
        if (rep == 0 || stats.total_seconds < cell.total_seconds) {
          cell.total_seconds = stats.total_seconds;
          cell.post_growth_seconds = post_growth;
        }
        cell.emb_carried = stats.emb_carried;
        cell.vf2_fallbacks = stats.vf2_fallbacks;
        cell.patterns = static_cast<int64_t>(result->patterns.size());
        const std::string transcript = Transcript(result->patterns);
        if (reference_transcript.empty()) {
          reference_transcript = transcript;
        } else if (transcript != reference_transcript) {
          std::fprintf(stderr,
                       "TRANSCRIPT MISMATCH at threads=%d budget=%lld — "
                       "modes are not byte-identical\n",
                       threads, static_cast<long long>(budget));
          return 1;
        }
      }
      std::fprintf(stderr,
                   "threads=%d budget=%lld: total=%.3fs post-growth=%.3fs "
                   "carried=%lld fallbacks=%lld\n",
                   threads, static_cast<long long>(budget),
                   cell.total_seconds, cell.post_growth_seconds,
                   static_cast<long long>(cell.emb_carried),
                   static_cast<long long>(cell.vf2_fallbacks));
      cells.push_back(cell);
    }
  }

  auto find = [&cells](int32_t threads, int64_t budget) -> const Cell& {
    for (const Cell& c : cells) {
      if (c.threads == threads && c.budget == budget) return c;
    }
    std::abort();
  };
  auto speedup = [&find](int32_t threads, bool post_growth) {
    const Cell& off = find(threads, 0);
    const Cell& on = find(threads, kEngineBudget);
    const double a = post_growth ? off.post_growth_seconds : off.total_seconds;
    const double b = post_growth ? on.post_growth_seconds : on.total_seconds;
    return b > 0 ? a / b : 0.0;
  };
  const double headline = speedup(8, /*post_growth=*/true);

  std::printf("{\n  \"bench\": \"growth_engine\",\n");
  std::printf("  \"graph_vertices\": %d,\n  \"k\": %d,\n  \"restarts\": %d,\n",
              kVertices, kTopK, kRestarts);
  std::printf("  \"engine_budget\": %lld,\n",
              static_cast<long long>(kEngineBudget));
  std::printf("  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::printf(
        "    {\"threads\": %d, \"emb_budget\": %lld, "
        "\"total_seconds\": %.6f, \"post_growth_seconds\": %.6f, "
        "\"emb_carried\": %lld, \"vf2_fallbacks\": %lld, "
        "\"patterns\": %lld}%s\n",
        c.threads, static_cast<long long>(c.budget), c.total_seconds,
        c.post_growth_seconds, static_cast<long long>(c.emb_carried),
        static_cast<long long>(c.vf2_fallbacks),
        static_cast<long long>(c.patterns),
        i + 1 < cells.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"post_growth_speedup_1t\": %.2f,\n", speedup(1, true));
  std::printf("  \"post_growth_speedup_2t\": %.2f,\n", speedup(2, true));
  std::printf("  \"post_growth_speedup_8t\": %.2f,\n", headline);
  std::printf("  \"end_to_end_speedup_8t\": %.2f,\n", speedup(8, false));
  std::printf("  \"transcripts_identical_across_modes\": true\n}\n");
  return headline >= kBar ? 0 : 2;  // exit 2 = ran but missed the 2x bar
}

}  // namespace
}  // namespace spidermine::bench

int main() { return spidermine::bench::Main(); }
