// Reproduces Figure 10: runtime of SpiderMine vs SUBDUE as the graph grows
// (|V| = 500..10500, average degree 3, 100 labels, sigma = 2, K = 10,
// Dmax = 10 -- the paper's setting for this sweep).
//
// Paper shape target: SUBDUE's runtime "quickly exhibits exponential
// growth curve while SpiderMine grows slowly".
//
// Output rows: vertices,spidermine_seconds,subdue_seconds,subdue_timed_out

#include <cstdio>

#include "baselines/subdue.h"
#include "bench_util.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figure 10",
         "runtime vs |V| (d=3, f=100): SpiderMine vs SUBDUE; sigma=2, "
         "K=10, Dmax=10");
  std::printf("vertices,spidermine_seconds,subdue_seconds,"
              "subdue_timed_out\n");

  for (int64_t n : {500, 1500, 3500, 6500, 10500}) {
    Rng rng(2000 + n);
    GraphBuilder builder = GenerateErdosRenyi(n, 3.0, 100, &rng);
    Pattern large = RandomConnectedPattern(30, 0.15, 100, &rng);
    PatternInjector injector(&builder);
    if (!injector.Inject(large, 2, &rng).ok()) return 1;
    LabeledGraph graph = std::move(builder.Build()).value();

    MineConfig config;
    config.min_support = 2;
    config.k = 10;
    config.dmax = 10;
    config.vmin = 30;
    config.rng_seed = 5;
    config.time_budget_seconds = 120;
    MineResult mined;
    double spidermine_seconds = RunSpiderMine(graph, config, &mined);

    SubdueConfig subdue_config;
    subdue_config.max_expansions = 100000;
    subdue_config.time_budget_seconds = 120;
    WallTimer timer;
    Result<SubdueResult> subdue = SubdueDiscover(graph, subdue_config);
    double subdue_seconds = timer.ElapsedSeconds();

    std::printf("%lld,%.3f,%.3f,%d\n", static_cast<long long>(n),
                spidermine_seconds, subdue_seconds,
                subdue.ok() && subdue->timed_out ? 1 : 0);
  }
  return 0;
}
