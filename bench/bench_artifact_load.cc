// Cold-start cost of adopting a Stage I artifact: the legacy `.sm1`
// copy-deserialize path vs the zero-copy mmap `.sm2` path.
//
// A synthetic spider store (deterministic, >= 100 MB on disk) is written in
// both formats; each is then loaded "cold" (page cache evicted with
// posix_fadvise DONTNEED first) and the wall time plus resident-set growth
// recorded. The mmap path only reads the header plus the offset arrays at
// Open — the bulk pools stay untouched until the lazy CRC pass — which is
// what turns a multi-second copy into a millisecond map. A second mmap open
// without eviction models an additional serving replica on the same box
// sharing the page cache.
//
// Output: a single JSON object on stdout (committed as
// BENCH_artifact_load.json by tools/run_bench_trajectory.sh).

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "spider/spider_index.h"
#include "spider/spider_store.h"
#include "spider/spider_store_io.h"
#include "spider/spider_store_mmap.h"

namespace spidermine::bench {
namespace {

// Store shape: tuned so the artifact tops 100 MB while the offset arrays
// (the only bulk data the mmap open actually scans) stay a small fraction
// of the file. Anchors dominate: each contributes 8 bytes (anchor pool +
// CSR id array).
constexpr int64_t kNumSpiders = 220'000;
constexpr int32_t kAnchorsPerSpider = 60;
constexpr int32_t kLeavesPerSpider = 30;
constexpr int64_t kNumGraphVertices = 500'000;
constexpr int32_t kNumLabels = 64;

SpiderStore BuildSyntheticStore() {
  Rng rng(20260808);
  SpiderStore store;
  store.Reserve(kNumSpiders, kNumSpiders * kLeavesPerSpider,
                kNumSpiders * kAnchorsPerSpider);
  std::vector<SpiderLeafKey> leaves(kLeavesPerSpider);
  std::vector<VertexId> anchors(kAnchorsPerSpider);
  for (int64_t s = 0; s < kNumSpiders; ++s) {
    const LabelId head = static_cast<LabelId>(rng.UniformInt(0, kNumLabels - 1));
    for (auto& leaf : leaves) {
      leaf = {static_cast<EdgeLabelId>(rng.UniformInt(0, 3)),
              static_cast<LabelId>(rng.UniformInt(0, kNumLabels - 1))};
    }
    std::sort(leaves.begin(), leaves.end());
    // Strictly ascending anchors inside [0, V): start at a random base and
    // take strided steps that cannot overflow the vertex range.
    const int64_t span = kNumGraphVertices - kAnchorsPerSpider * 8 - 1;
    VertexId v = static_cast<VertexId>(rng.UniformInt(0, span - 1));
    for (auto& anchor : anchors) {
      v += static_cast<VertexId>(rng.UniformInt(1, 8));
      anchor = v;
    }
    store.Append(head, leaves, anchors, /*closed=*/true);
  }
  return store;
}

// Asks the kernel to drop this file's page-cache pages so the next read is
// a genuine cold start. Advisory, but effective for clean pages on Linux.
void EvictFromPageCache(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
#if defined(POSIX_FADV_DONTNEED)
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  ::close(fd);
}

int Main() {
  if (!Sm2HostSupported()) {
    std::fprintf(stderr, "big-endian host: .sm2 unsupported, skipping\n");
    return 0;
  }
  std::fprintf(stderr, "building synthetic store (%lld spiders)...\n",
               static_cast<long long>(kNumSpiders));
  SpiderStore store = BuildSyntheticStore();
  SpiderIndex index(&store, kNumGraphVertices);
  Stage1Meta meta;
  meta.min_support = 2;
  meta.num_graph_vertices = kNumGraphVertices;
  meta.graph_hash = 0x5eedf00dcafe1234ULL;  // synthetic; never graph-bound

  const auto dir = std::filesystem::temp_directory_path();
  const std::string sm1_path = (dir / "bench_artifact_load.sm1").string();
  const std::string sm2_path = (dir / "bench_artifact_load.sm2").string();
  Status s1 = SaveSpiderStoreBinary(store, meta, sm1_path);
  Status s2 = SaveStage1Sm2(store, index, meta, sm2_path);
  if (!s1.ok() || !s2.ok()) {
    std::fprintf(stderr, "save failed: %s / %s\n", s1.ToString().c_str(),
                 s2.ToString().c_str());
    return 1;
  }
  const int64_t sm1_bytes = std::filesystem::file_size(sm1_path);
  const int64_t sm2_bytes = std::filesystem::file_size(sm2_path);
  std::fprintf(stderr, "sm1=%lld bytes, sm2=%lld bytes\n",
               static_cast<long long>(sm1_bytes),
               static_cast<long long>(sm2_bytes));

  // Cold mmap open FIRST: peak RSS is a process high-water mark, so the
  // copy load (which materializes every column) must come after it for the
  // mmap RSS figure to mean anything.
  EvictFromPageCache(sm2_path);
  const int64_t rss_before_mmap = PeakRssBytes();
  WallTimer mmap_timer;
  Result<std::unique_ptr<MappedStage1>> mapped = MappedStage1::Open(sm2_path);
  const double mmap_cold_seconds = mmap_timer.ElapsedSeconds();
  if (!mapped.ok()) {
    std::fprintf(stderr, "mmap open failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  const int64_t mmap_rss_growth = PeakRssBytes() - rss_before_mmap;
  const int64_t mapped_spiders = (*mapped)->store().size();

  // A second replica opening the same artifact: the offset pages are
  // already resident, so this is the page-cache-shared serving cost.
  WallTimer warm_timer;
  Result<std::unique_ptr<MappedStage1>> replica = MappedStage1::Open(sm2_path);
  const double mmap_warm_seconds = warm_timer.ElapsedSeconds();
  if (!replica.ok()) return 1;

  // Full validation (bulk CRCs over every section) — the one-time cost a
  // query pays on first touch, still paid lazily rather than at startup.
  WallTimer validate_timer;
  Status validated = (*mapped)->EnsureValidated();
  const double validate_seconds = validate_timer.ElapsedSeconds();
  if (!validated.ok()) {
    std::fprintf(stderr, "validation failed: %s\n",
                 validated.ToString().c_str());
    return 1;
  }

  // Cold copy-deserialize of the legacy format.
  EvictFromPageCache(sm1_path);
  const int64_t rss_before_copy = PeakRssBytes();
  WallTimer copy_timer;
  Result<Stage1Artifact> copied = LoadSpiderStoreBinary(sm1_path);
  const double copy_cold_seconds = copy_timer.ElapsedSeconds();
  if (!copied.ok()) {
    std::fprintf(stderr, "copy load failed: %s\n",
                 copied.status().ToString().c_str());
    return 1;
  }
  const int64_t copy_rss_growth = PeakRssBytes() - rss_before_copy;
  if (copied->store.size() != mapped_spiders) {
    std::fprintf(stderr, "spider count mismatch between formats\n");
    return 1;
  }

  const double speedup =
      mmap_cold_seconds > 0 ? copy_cold_seconds / mmap_cold_seconds : 0.0;
  std::printf(
      "{\n"
      "  \"bench\": \"artifact_load\",\n"
      "  \"num_spiders\": %lld,\n"
      "  \"sm1_file_bytes\": %lld,\n"
      "  \"sm2_file_bytes\": %lld,\n"
      "  \"copy_cold_load_seconds\": %.6f,\n"
      "  \"mmap_cold_open_seconds\": %.6f,\n"
      "  \"mmap_warm_replica_open_seconds\": %.6f,\n"
      "  \"mmap_lazy_full_validate_seconds\": %.6f,\n"
      "  \"cold_load_speedup\": %.1f,\n"
      "  \"copy_rss_growth_bytes\": %lld,\n"
      "  \"mmap_rss_growth_bytes\": %lld\n"
      "}\n",
      static_cast<long long>(kNumSpiders),
      static_cast<long long>(sm1_bytes), static_cast<long long>(sm2_bytes),
      copy_cold_seconds, mmap_cold_seconds, mmap_warm_seconds,
      validate_seconds, speedup, static_cast<long long>(copy_rss_growth),
      static_cast<long long>(mmap_rss_growth));

  std::filesystem::remove(sm1_path);
  std::filesystem::remove(sm2_path);
  return speedup >= 10.0 ? 0 : 2;  // exit 2 = ran but missed the 10x bar
}

}  // namespace
}  // namespace spidermine::bench

int main() { return spidermine::bench::Main(); }
