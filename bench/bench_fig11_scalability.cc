// Reproduces Figures 11 and 12: SpiderMine's runtime as |V| grows to
// 40000 (d = 3, 100 labels, sigma = 2, K = 10, Dmax = 10) and the size of
// the largest pattern discovered at each scale. The background graph gets
// progressively larger planted patterns, following the paper's report of
// finding "patterns of size 230 in data graph of size 40000 in less than
// two minutes" (their largest-pattern series: 230, 21, 19, 33, 59, 53,
// 101, 121, 166 across scales -- i.e. growing with noise).
//
// Output rows: vertices,seconds,largest_pattern_vertices,largest_pattern_edges

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figures 11-12",
         "SpiderMine runtime and largest-pattern size vs |V| up to 40000 "
         "(d=3, f=100, sigma=2, K=10, Dmax=10)");
  std::printf("vertices,seconds,largest_vertices,largest_edges\n");

  for (int64_t n : {1000, 5000, 10000, 20000, 30000, 40000}) {
    Rng rng(3000 + n);
    GraphBuilder builder = GenerateErdosRenyi(n, 3.0, 100, &rng);
    // Plant a large pattern that scales with the graph (the paper's
    // largest series grows with |V|), capped for injection headroom.
    int32_t large_size =
        static_cast<int32_t>(std::min<int64_t>(n / 200 + 20, 220));
    Pattern large = RandomConnectedPattern(large_size, 0.15, 100, &rng);
    PatternInjector injector(&builder);
    if (!injector.Inject(large, 2, &rng).ok()) return 1;
    LabeledGraph graph = std::move(builder.Build()).value();

    MineConfig config;
    config.min_support = 2;
    config.k = 10;
    config.dmax = 10;
    config.vmin = large_size;
    config.rng_seed = 5;
    config.time_budget_seconds = 150;
    MineResult mined;
    double seconds = RunSpiderMine(graph, config, &mined);

    std::printf("%lld,%.3f,%d,%d\n", static_cast<long long>(n), seconds,
                LargestVertices(mined.patterns), LargestEdges(mined.patterns));
  }
  return 0;
}
