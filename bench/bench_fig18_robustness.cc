// Reproduces Table 3 + Figure 18: robustness of the top-5 result against
// increasing small-pattern noise (GID 6-10: graphs growing from ~20k to
// ~57k vertices, 50 injected small patterns with rising support, 5 large
// 50-vertex patterns with support 10-15; Dmax = 6, sigma = 10, K = 5).
//
// Paper shape target: the top-5 largest patterns stay roughly constant in
// size (~120-150 edges in the paper's plot) across all five noise levels;
// an occasional outlier comes from two injected patterns overlapping.
//
// Output rows: gid,rank,size_edges,size_vertices

#include <cstdio>

#include "bench_util.h"
#include "gen/paper_datasets.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Table 3 + Figure 18",
         "robustness against small-pattern noise (GID 6-10): top-5 "
         "pattern sizes; sigma=10, K=5, Dmax=6");
  std::printf("gid,rank,size_edges,size_vertices\n");

  for (int32_t gid = 6; gid <= 10; ++gid) {
    Result<PaperDataset> data = BuildGidDataset(gid, /*seed=*/42);
    if (!data.ok()) {
      std::fprintf(stderr, "GID %d: %s\n", gid,
                   data.status().ToString().c_str());
      return 1;
    }
    MineConfig config;
    config.min_support = 10;
    config.k = 5;
    config.dmax = 6;
    config.vmin = 50;
    config.rng_seed = 42;
    config.time_budget_seconds = 240;
    MineResult mined;
    RunSpiderMine(data->graph, config, &mined);
    for (size_t rank = 0; rank < mined.patterns.size(); ++rank) {
      std::printf("%d,%zu,%d,%d\n", gid, rank + 1,
                  mined.patterns[rank].NumEdges(),
                  mined.patterns[rank].NumVertices());
    }
  }
  return 0;
}
