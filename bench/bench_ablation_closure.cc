// Ablation: post-growth internal-edge closure (spidermine/closure.h).
//
// The star-based Stage I drops leaf-leaf edges, and SpiderExtend's Internal
// Integrity rule never re-adds an edge between two already-grown vertices,
// so without closure the miner structurally cannot recover cycle-closing
// edges. This bench plants cyclic patterns in ER backgrounds and compares
// the top-pattern size and oracle agreement with closure on vs off.
//
// Output rows: instance,closure,largest_edges,oracle_edges,closure_edges_added

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "spidermine/oracle.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Closure ablation",
         "planted cyclic pattern recovery with internal-edge closure on/off; "
         "oracle = exact top-1 by complete enumeration");
  std::printf("instance,closure,largest_edges,oracle_edges,closure_edges_added\n");

  for (uint64_t instance = 0; instance < 4; ++instance) {
    Rng rng(100 + instance);
    GraphBuilder builder = GenerateErdosRenyi(150, 1.5, 15, &rng);
    // extra_edge_fraction 0.5 makes the planted pattern decidedly cyclic.
    Pattern planted = RandomConnectedPattern(9, 0.5, 15, &rng);
    PatternInjector injector(&builder);
    if (!injector.Inject(planted, 3, &rng).ok()) continue;
    const LabeledGraph graph = std::move(builder.Build()).value();

    OracleConfig oracle_config;
    oracle_config.min_support = 3;
    oracle_config.k = 1;
    oracle_config.dmax = 6;
    Result<OracleResult> oracle = ExactTopKLargest(graph, oracle_config);
    const int32_t oracle_edges =
        oracle.ok() && !oracle->top_k.empty()
            ? oracle->top_k.front().pattern.NumEdges()
            : -1;

    for (bool closure : {false, true}) {
      MineConfig config;
      config.min_support = 3;
      config.k = 5;
      config.dmax = 6;
      config.vmin = 9;
      config.rng_seed = 11;
      config.restarts = 3;
      config.close_internal_edges = closure;
      MineResult mined;
      RunSpiderMine(graph, config, &mined);
      std::printf("%llu,%s,%d,%d,%lld\n",
                  static_cast<unsigned long long>(instance),
                  closure ? "on" : "off", LargestEdges(mined.patterns),
                  oracle_edges,
                  static_cast<long long>(mined.stats.closure_edges_added));
    }
  }
  return 0;
}
