// Reproduces Figure 9: runtime of SpiderMine vs the complete miner
// (MoSS/gSpan stand-in) on Erdos-Renyi graphs with average degree 2 and
// f = 70 labels, |V| = 100..500 (the paper lowered the degree to 2 so
// MoSS could finish at all).
//
// Paper shape target: the complete miner's curve rises much faster than
// SpiderMine's; both stay under a few seconds at this scale.
//
// Output rows: vertices,spidermine_seconds,complete_seconds,complete_aborted

#include <cstdio>

#include "baselines/complete_miner.h"
#include "bench_util.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figure 9",
         "runtime vs |V| (d=2, f=70): SpiderMine vs complete miner "
         "(MoSS stand-in); sigma=2, K=10, Dmax=4");
  std::printf("vertices,spidermine_seconds,complete_seconds,"
              "complete_aborted\n");

  for (int64_t n = 100; n <= 500; n += 100) {
    Rng rng(1000 + n);
    GraphBuilder builder = GenerateErdosRenyi(n, 2.0, 70, &rng);
    // A planted large pattern, as in the paper's synthetic recipe.
    Pattern large = RandomConnectedPattern(30, 0.15, 70, &rng);
    PatternInjector injector(&builder);
    if (!injector.Inject(large, 2, &rng).ok()) return 1;
    LabeledGraph graph = std::move(builder.Build()).value();

    MineConfig config;
    config.min_support = 2;
    config.k = 10;
    config.dmax = 4;
    config.vmin = 30;
    config.rng_seed = 5;
    config.time_budget_seconds = 60;
    MineResult mined;
    double spidermine_seconds = RunSpiderMine(graph, config, &mined);

    CompleteMinerConfig complete_config;
    complete_config.min_support = 2;
    complete_config.time_budget_seconds = 60;
    complete_config.max_patterns = 500000;
    WallTimer timer;
    Result<CompleteMineResult> complete = MineComplete(graph, complete_config);
    double complete_seconds = timer.ElapsedSeconds();

    std::printf("%lld,%.3f,%.3f,%d\n", static_cast<long long>(n),
                spidermine_seconds, complete_seconds,
                complete.ok() && complete->aborted ? 1 : 0);
  }
  return 0;
}
