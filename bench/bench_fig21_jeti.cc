// Reproduces Figure 21: pattern-size distribution on the Jeti call graph
// (simulated; see DESIGN.md Sec. 4), SpiderMine vs SUBDUE, minimum
// support 10. The paper notes MoSS and SEuS "can not return result with
// hours of running on this data" -- demonstrated here with budget aborts.
//
// Paper shape targets: SpiderMine's bars at ~28-32 vertices (the cohesive
// utility-class backbone), SUBDUE's at 1-4.
//
// Output rows: algo,size_vertices,count  (plus baseline-abort notes)

#include <cstdio>
#include <map>

#include "baselines/complete_miner.h"
#include "baselines/seus.h"
#include "baselines/subdue.h"
#include "bench_util.h"
#include "gen/callgraph_sim.h"

int main() {
  using namespace spidermine;
  using namespace spidermine::bench;
  Banner("Figure 21",
         "Jeti call graph (simulated, 835 methods / 1764 calls / 267 "
         "classes): SpiderMine (sigma=10) vs SUBDUE; MoSS/SEuS budget "
         "behavior reported");
  std::printf("algo,size_vertices,count\n");

  CallGraphSimConfig sim;
  Result<CallGraphDataset> data = GenerateCallGraphSim(sim);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  MineConfig config;
  config.min_support = 10;
  config.k = 10;
  config.dmax = 8;
  config.vmin = 10;
  config.rng_seed = 42;
  config.time_budget_seconds = 120;
  MineResult mined;
  RunSpiderMine(data->graph, config, &mined);
  for (const auto& [size, count] : SizeDistribution(mined.patterns)) {
    std::printf("SpiderMine,%d,%d\n", size, count);
  }

  SubdueConfig subdue_config;
  subdue_config.max_best = 10;
  subdue_config.max_expansions = 10000;
  subdue_config.time_budget_seconds = 60;
  Result<SubdueResult> subdue = SubdueDiscover(data->graph, subdue_config);
  if (subdue.ok()) {
    std::map<int32_t, int32_t> hist;
    for (const SubduePattern& p : subdue->patterns) {
      ++hist[p.pattern.NumVertices()];
    }
    for (const auto& [size, count] : hist) {
      std::printf("SUBDUE,%d,%d\n", size, count);
    }
  }

  // The paper's "MoSS and SEuS can not return result" row: run with a
  // 20-second budget and report whether they completed.
  {
    CompleteMinerConfig complete_config;
    complete_config.min_support = 10;
    complete_config.time_budget_seconds = 20;
    Result<CompleteMineResult> r = MineComplete(data->graph, complete_config);
    std::printf("# complete-miner completed=%d (paper: '-')\n",
                r.ok() && !r->aborted ? 1 : 0);
  }
  {
    SeusConfig seus_config;
    seus_config.min_support = 10;
    seus_config.time_budget_seconds = 20;
    Result<SeusResult> r = SeusDiscover(data->graph, seus_config);
    int32_t largest = 0;
    if (r.ok()) {
      for (const SeusPattern& p : r->patterns) {
        largest = std::max(largest, p.pattern.NumVertices());
      }
    }
    std::printf("# seus completed=%d largest=%d (paper: '-')\n",
                r.ok() && !r->timed_out ? 1 : 0, largest);
  }
  return 0;
}
